#include "route/global_router.hpp"

#include <algorithm>
#include "util/assert.hpp"
#include <chrono>
#include <cmath>
#include <limits>
#include <new>
#include <thread>

#include "exec/exec.hpp"
#include "observe/observe.hpp"
#include "route/steiner.hpp"
#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"
#include "util/simd.hpp"

namespace ppacd::route {

namespace {

/// Nets routed concurrently between usage commits. Within a batch every net
/// routes against the same frozen usage/history snapshot; usage is then
/// committed serially in batch order, so the outcome is identical for any
/// thread count (the batch boundaries depend only on the net ordering).
constexpr std::size_t kRouteBatch = 64;

/// Rip-up-and-reroute uses smaller batches: rerouted nets are blind to each
/// other within a batch, and congested nets herd onto the same escape routes
/// when too many reroute against the same snapshot.
constexpr std::size_t kRerouteBatch = 8;

/// Nets per parallel chunk inside a batch / topology build.
constexpr std::size_t kNetGrain = 4;

}  // namespace

double RouteResult::top_congestion(double percent) const {
  if (edge_utilization.empty()) return 0.0;
  std::vector<double> sorted = edge_utilization;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const std::size_t count = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(sorted.size()) * percent /
                                  100.0));
  double sum = 0.0;
  for (std::size_t i = 0; i < count; ++i) sum += sorted[i];
  return sum / static_cast<double>(count);
}

GlobalRouter::GlobalRouter(const netlist::Netlist& netlist,
                           const std::vector<geom::Point>& positions,
                           const geom::Rect& core, const RouteOptions& options)
    : nl_(&netlist), positions_(&positions), core_(core), options_(options) {
  nx_ = std::max(2, static_cast<int>(std::ceil(core.width() / options.gcell_um)));
  ny_ = std::max(2, static_cast<int>(std::ceil(core.height() / options.gcell_um)));
  const std::size_t h_size =
      static_cast<std::size_t>(nx_ - 1) * static_cast<std::size_t>(ny_);
  const std::size_t v_size =
      static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_ - 1);
  h_size_ = static_cast<std::int32_t>(h_size);
  edges_.assign(h_size + v_size, EdgeState{});
}

GlobalRouter::GridPoint GlobalRouter::gcell_of(const geom::Point& p) const {
  GridPoint g;
  g.x = std::clamp(static_cast<int>((p.x - core_.lx) / options_.gcell_um), 0, nx_ - 1);
  g.y = std::clamp(static_cast<int>((p.y - core_.ly) / options_.gcell_um), 0, ny_ - 1);
  return g;
}

std::size_t GlobalRouter::h_index(int x, int y) const {
  PPACD_DCHECK(x >= 0 && x < nx_ - 1 && y >= 0 && y < ny_,
               "h edge (" << x << ", " << y << ") outside " << nx_ << " x " << ny_);
  return static_cast<std::size_t>(y) * static_cast<std::size_t>(nx_ - 1) +
           static_cast<std::size_t>(x);
}

std::size_t GlobalRouter::v_index(int x, int y) const {
  PPACD_DCHECK(x >= 0 && x < nx_ && y >= 0 && y < ny_ - 1,
               "v edge (" << x << ", " << y << ") outside " << nx_ << " x " << ny_);
  return static_cast<std::size_t>(x) * static_cast<std::size_t>(ny_ - 1) +
           static_cast<std::size_t>(y);
}

std::int32_t GlobalRouter::h_edge(int x, int y) const {
  return static_cast<std::int32_t>(h_index(x, y));
}

std::int32_t GlobalRouter::v_edge(int x, int y) const {
  return h_size_ + static_cast<std::int32_t>(v_index(x, y));
}

double GlobalRouter::edge_cost(std::int32_t e,
                               const ExcludedUsage* excluded) const {
  const EdgeState& state = edges_[static_cast<std::size_t>(e)];
  double usage = state.usage;
  if (excluded != nullptr) {
    usage -= excluded->get(e, 0.0);
  }
  const double cap = e < h_size_ ? options_.h_capacity : options_.v_capacity;
  double cost = 1.0 + state.history;
  if (usage + 1.0 > cap) {
    cost += options_.overflow_penalty * (usage + 1.0 - cap);
  }
  return cost;
}

double GlobalRouter::acc_cost_h(double acc, int x0, int x1, int y,
                                const ExcludedUsage* excluded) const {
  const int lo = std::min(x0, x1);
  const int hi = std::max(x0, x1);
  const std::int32_t base = h_edge(lo, y);
  for (std::int32_t e = base; e < base + (hi - lo); ++e) {
    acc += edge_cost(e, excluded);
  }
  return acc;
}

double GlobalRouter::acc_cost_v(double acc, int x, int y0, int y1,
                                const ExcludedUsage* excluded) const {
  const int lo = std::min(y0, y1);
  const int hi = std::max(y0, y1);
  const std::int32_t base = v_edge(x, lo);
  for (std::int32_t e = base; e < base + (hi - lo); ++e) {
    acc += edge_cost(e, excluded);
  }
  return acc;
}

void GlobalRouter::commit(const std::vector<std::int32_t>& path, int delta) {
  for (const std::int32_t e : path) {
    double& usage = edges_[static_cast<std::size_t>(e)].usage;
    usage += delta;
    PPACD_DCHECK(usage >= -1e-9, "negative edge usage " << usage);
  }
}

void GlobalRouter::append_h(std::vector<std::int32_t>& path, int x0, int x1,
                            int y) const {
  const int lo = std::min(x0, x1);
  const int hi = std::max(x0, x1);
  path.reserve(path.size() + static_cast<std::size_t>(hi - lo));
  // Consecutive ids: h_index is contiguous in x along a row.
  const std::int32_t base = lo < hi ? h_edge(lo, y) : 0;
  for (std::int32_t e = 0; e < hi - lo; ++e) path.push_back(base + e);
}

void GlobalRouter::append_v(std::vector<std::int32_t>& path, int x, int y0,
                            int y1) const {
  const int lo = std::min(y0, y1);
  const int hi = std::max(y0, y1);
  path.reserve(path.size() + static_cast<std::size_t>(hi - lo));
  // Consecutive ids: v_index is contiguous in y along a column.
  const std::int32_t base = lo < hi ? v_edge(x, lo) : 0;
  for (std::int32_t e = 0; e < hi - lo; ++e) path.push_back(base + e);
}

void GlobalRouter::route_segment(GridPoint a, GridPoint b,
                                 const ExcludedUsage* excluded,
                                 std::vector<std::int32_t>& out) const {
  if (a.x == b.x && a.y == b.y) return;
  if (a.x == b.x) {
    append_v(out, a.x, a.y, b.y);
    return;
  }
  if (a.y == b.y) {
    append_h(out, a.x, b.x, a.y);
    return;
  }

  // Cost every candidate with the acc_cost_* folds (same edge order and the
  // same sequential summation the old build-then-path_cost version used) and
  // materialize only the winner. Candidates are considered in the same order
  // and the first strictly cheaper one wins, so the chosen path — and every
  // committed bit downstream — is unchanged.
  enum Kind { kHV, kVH, kXJog, kYJog };
  double best_cost = std::numeric_limits<double>::infinity();
  Kind best_kind = kHV;
  int best_mid = 0;
  auto consider = [&](double cost, Kind kind, int mid) {
    if (cost < best_cost) {
      best_cost = cost;
      best_kind = kind;
      best_mid = mid;
    }
  };

  // L-shapes.
  consider(acc_cost_v(acc_cost_h(0.0, a.x, b.x, a.y, excluded), b.x, a.y, b.y,
                      excluded),
           kHV, 0);
  consider(acc_cost_h(acc_cost_v(0.0, a.x, a.y, b.y, excluded), a.x, b.x, b.y,
                      excluded),
           kVH, 0);

  // Z-shapes: vertical jog at sampled intermediate columns, horizontal jog
  // at sampled intermediate rows.
  const int dx = std::abs(a.x - b.x);
  const int dy = std::abs(a.y - b.y);
  const int samples = options_.z_samples;
  if (dx > 1) {
    const int step = std::max(1, dx / (samples + 1));
    for (int xm = std::min(a.x, b.x) + step; xm < std::max(a.x, b.x); xm += step) {
      double cost = acc_cost_h(0.0, a.x, xm, a.y, excluded);
      cost = acc_cost_v(cost, xm, a.y, b.y, excluded);
      cost = acc_cost_h(cost, xm, b.x, b.y, excluded);
      consider(cost, kXJog, xm);
    }
  }
  if (dy > 1) {
    const int step = std::max(1, dy / (samples + 1));
    for (int ym = std::min(a.y, b.y) + step; ym < std::max(a.y, b.y); ym += step) {
      double cost = acc_cost_v(0.0, a.x, a.y, ym, excluded);
      cost = acc_cost_h(cost, a.x, b.x, ym, excluded);
      cost = acc_cost_v(cost, b.x, ym, b.y, excluded);
      consider(cost, kYJog, ym);
    }
  }

  switch (best_kind) {
    case kHV:
      append_h(out, a.x, b.x, a.y);
      append_v(out, b.x, a.y, b.y);
      break;
    case kVH:
      append_v(out, a.x, a.y, b.y);
      append_h(out, a.x, b.x, b.y);
      break;
    case kXJog:
      append_h(out, a.x, best_mid, a.y);
      append_v(out, best_mid, a.y, b.y);
      append_h(out, best_mid, b.x, b.y);
      break;
    case kYJog:
      append_v(out, a.x, a.y, best_mid);
      append_h(out, a.x, b.x, best_mid);
      append_v(out, b.x, best_mid, b.y);
      break;
  }
}

void GlobalRouter::route_maze(GridPoint a, GridPoint b,
                              const ExcludedUsage* excluded,
                              std::vector<std::int32_t>& out) const {
  // Bounded search window (nodes outside it are never relaxed).
  const int x0 = std::max(0, std::min(a.x, b.x) - options_.maze_margin);
  const int x1 = std::min(nx_ - 1, std::max(a.x, b.x) + options_.maze_margin);
  const int y0 = std::max(0, std::min(a.y, b.y) - options_.maze_margin);
  const int y1 = std::min(ny_ - 1, std::max(a.y, b.y) + options_.maze_margin);
  // Queue/parent node ids pack the coordinates as (y << 16) | x. Integer
  // comparison of packed ids is lexicographic in (y, x) — the same ordering
  // as the row-major ids the binary heap broke distance ties with, so the
  // pop order is unchanged — and unpacking x/y or stepping to a neighbor is
  // bit arithmetic instead of an integer divide per expansion. The
  // epoch-stamped node array is indexed row-major (one multiply to convert).
  auto pack = [](int x, int y) {
    return (static_cast<std::int32_t>(y) << 16) | static_cast<std::int32_t>(x);
  };
  // Node state is indexed window-locally: the scratch block for a typical
  // bounded window fits in L1/L2, where full-grid row-major indexing would
  // scatter a small search across megabytes. Queue ids stay globally packed
  // (y << 16) | x — the tie-break order is untouched.
  const std::int32_t wnx = x1 - x0 + 1;
  auto idx_of = [wnx, x0, y0](std::int32_t p) {
    return ((p >> 16) - y0) * wnx + ((p & 0xffff) - x0);
  };

  SlotScratch& slot = slots_[exec::this_worker_slot()];
  const std::size_t ncells = static_cast<std::size_t>(wnx) *
                             static_cast<std::size_t>(y1 - y0 + 1);
  if (slot.maze_nodes.size() < ncells) {
    slot.maze_nodes.assign(
        std::max(ncells, slot.maze_nodes.size() * 2), SlotScratch::MazeNode{});
    slot.maze_epoch = 0;
  }
  SlotScratch::MazeNode* PPACD_RESTRICT nodes = slot.maze_nodes.data();
  const std::uint32_t epoch = ++slot.maze_epoch;

  // Every edge cost is >= 1.0 (cost = 1.0 + history + penalty terms), which
  // is exactly the monotonicity contract the width-1.0 bucket queue needs
  // for a pop order bit-identical to the old binary heap (bucket_queue.hpp).
  BucketQueue& queue = slot.maze_queue;
  queue.begin();
  const std::int32_t start = pack(a.x, a.y);
  const std::int32_t goal = pack(b.x, b.y);
  nodes[idx_of(start)] = SlotScratch::MazeNode{0.0, -1, epoch};
  queue.push(0.0, start);

  // Same arithmetic as edge_cost, with the per-edge invariants hoisted and
  // the h/v capacity chosen per call site instead of per edge.
  const EdgeState* PPACD_RESTRICT es = edges_.data();
  const double hcap = options_.h_capacity;
  const double vcap = options_.v_capacity;
  const double penalty = options_.overflow_penalty;
  auto cost_of = [&](std::int32_t e, double cap) {
    const EdgeState state = es[e];
    double usage = state.usage;
    if (excluded != nullptr) usage -= excluded->get(e, 0.0);
    double cost = 1.0 + state.history;
    if (usage + 1.0 > cap) cost += penalty * (usage + 1.0 - cap);
    return cost;
  };

  const std::int32_t hstride = nx_ - 1;
  const std::int32_t vstride = ny_ - 1;
  constexpr std::int32_t kYStep = 1 << 16;
  BucketQueue::Entry top;
  while (queue.pop(top)) {
    const auto [d, node] = top;
    const std::int32_t node_idx = idx_of(node);
    if (d > nodes[node_idx].dist) continue;  // stale, same skip as the heap
    if (node == goal) break;
    const int x = node & 0xffff;
    const int y = node >> 16;
    // Neighbor edge ids follow from the dense layout: h edges of row y start
    // at y*(nx-1), v edges of column x start at h_size_ + x*(ny-1). The four
    // steps relax in the same E, W, N, S order the old Step loop used.
    const std::int32_t hrow = static_cast<std::int32_t>(y) * hstride;
    const std::int32_t vcol = h_size_ + static_cast<std::int32_t>(x) * vstride;
    auto relax = [&](std::int32_t edge, double cap, std::int32_t next,
                     std::int32_t next_idx) {
      const double nd = d + cost_of(edge, cap);
      SlotScratch::MazeNode& n = nodes[next_idx];
      if (n.stamp != epoch) {
        n = SlotScratch::MazeNode{nd, node, epoch};
        queue.push(nd, next);
      } else if (nd < n.dist) {
        n.dist = nd;
        n.parent = node;
        queue.push(nd, next);
      }
    };
    if (x + 1 <= x1) relax(hrow + x, hcap, node + 1, node_idx + 1);
    if (x - 1 >= x0) relax(hrow + x - 1, hcap, node - 1, node_idx - 1);
    if (y + 1 <= y1) relax(vcol + y, vcap, node + kYStep, node_idx + wnx);
    if (y - 1 >= y0) relax(vcol + y - 1, vcap, node - kYStep, node_idx - wnx);
  }
  const std::int32_t goal_idx = idx_of(goal);
  if (nodes[goal_idx].stamp != epoch || !std::isfinite(nodes[goal_idx].dist)) {
    route_segment(a, b, excluded, out);  // defensive; window is connected
    return;
  }

  // Path length = number of backtrack hops; count first so the single
  // append below never reallocates mid-loop.
  std::size_t hops = 0;
  for (std::int32_t node = goal; nodes[idx_of(node)].parent >= 0;
       node = nodes[idx_of(node)].parent) {
    ++hops;
  }
  out.reserve(out.size() + hops);
  for (std::int32_t node = goal; nodes[idx_of(node)].parent >= 0;
       node = nodes[idx_of(node)].parent) {
    const std::int32_t prev = nodes[idx_of(node)].parent;
    const int cx = node & 0xffff;
    const int cy = node >> 16;
    const int px = prev & 0xffff;
    const int py = prev >> 16;
    if (cy == py) {
      out.push_back(h_edge(std::min(cx, px), cy));
    } else {
      out.push_back(v_edge(cx, std::min(cy, py)));
    }
  }
}

RouteResult GlobalRouter::run() {
  auto result = run_impl(fault::DegradePolicy{});
  PPACD_CHECK(result.has_value(), "routing failed: " << result.error().code);
  return std::move(result).value();
}

fault::Expected<RouteResult, fault::FlowError> GlobalRouter::try_run(
    const fault::DegradePolicy& policy) {
  try {
    return run_impl(policy);
  } catch (const std::bad_alloc&) {
    return fault::Unexpected<fault::FlowError>(
        fault::make_error("route.maze", fault::FaultKind::kAlloc));
  }
}

fault::Expected<RouteResult, fault::FlowError> GlobalRouter::run_impl(
    const fault::DegradePolicy& policy) {
  const netlist::Netlist& nl = *nl_;

  // One scratch slot per worker lane; the virtual rip-up tables address the
  // full edge-id space (h edges then v edges).
  slots_.resize(exec::worker_slots());
  for (SlotScratch& slot : slots_) {
    slot.own.grow(edges_.size());
  }

  // Build two-pin segments (in GCell space) for every routable net. Paths
  // are stored flat per net: one edge-id array plus the exclusive end offset
  // of each segment's span, so a routed net costs two allocations total
  // instead of one vector per segment.
  struct SegSpan {
    GridPoint a;
    GridPoint b;
    std::int32_t end = 0;  ///< exclusive end of this segment's edges
  };
  struct NetRoute {
    netlist::NetId net = netlist::kInvalidId;
    std::vector<SegSpan> segments;
    std::vector<std::int32_t> edges;  ///< concatenated segment paths
    double hpwl = 0.0;
  };
  std::vector<netlist::NetId> routable;
  routable.reserve(nl.net_count());
  for (std::size_t ni = 0; ni < nl.net_count(); ++ni) {
    const netlist::NetId net_id = static_cast<netlist::NetId>(ni);
    const netlist::Net& net = nl.net(net_id);
    if (net.pins.size() < 2) continue;
    if (net.is_clock && !options_.route_clock_nets) continue;
    routable.push_back(net_id);
  }

  // Topology construction is per-net independent (pure reads + its own slot).
  std::vector<NetRoute> routes(routable.size());
  exec::parallel_for(0, routable.size(), kNetGrain, [&](std::size_t i) {
    const netlist::NetId net_id = routable[i];
    const netlist::Net& net = nl.net(net_id);
    SlotScratch& slot = slots_[exec::this_worker_slot()];
    std::vector<geom::Point>& pins = slot.pins;
    pins.clear();
    pins.reserve(net.pins.size());
    geom::BBox box;
    for (netlist::PinId pid : net.pins) {
      const netlist::Pin& pin = nl.pin(pid);
      const geom::Point pos = pin.kind == netlist::PinKind::kTopPort
                                  ? nl.port(pin.port).position
                                  : positions_->at(pin.cell.index());
      pins.push_back(pos);
      box.expand(pos);
    }
    NetRoute& route = routes[i];
    route.net = net_id;
    route.hpwl = box.half_perimeter();
    std::vector<Segment>& topology = slot.topo_segs;
    if (options_.use_steiner_topology) {
      steiner_segments_into(pins, slot.topo, topology);
    } else {
      spanning_segments_into(pins, slot.topo, topology);
    }
    route.segments.reserve(topology.size());
    for (const Segment& seg : topology) {
      route.segments.push_back(SegSpan{gcell_of(seg.a), gcell_of(seg.b), 0});
    }
  });

  // Short nets first: they have the least routing flexibility. Net id breaks
  // HPWL ties so the order (and thus every downstream result) is total.
  std::sort(routes.begin(), routes.end(),
            [](const NetRoute& a, const NetRoute& b) {
              if (a.hpwl != b.hpwl) return a.hpwl < b.hpwl;
              return a.net < b.net;
            });

  // Fault site `route.maze`, keyed by net id so firing is independent of
  // the batch schedule. Failed nets skip the batch and are retried serially
  // below; poisoned nets route normally but their wirelength contribution
  // is NaN-poisoned at collection.
  const bool faults_on = fault::plan_active();
  std::vector<std::uint8_t> net_failed(faults_on ? routes.size() : 0, 0);
  std::vector<std::uint8_t> net_poisoned(faults_on ? routes.size() : 0, 0);

  // Routes all segments of one net into the lane's flat staging buffer and
  // copies the result into the net (exact-sized, two allocations).
  auto route_net = [&](NetRoute& route, const ExcludedUsage* excluded) {
    SlotScratch& slot = slots_[exec::this_worker_slot()];
    slot.path_edges.clear();
    for (SegSpan& seg : route.segments) {
      route_segment(seg.a, seg.b, excluded, slot.path_edges);
      seg.end = static_cast<std::int32_t>(slot.path_edges.size());
    }
    route.edges.assign(slot.path_edges.begin(), slot.path_edges.end());
  };

  // Flight recorder. Gated on options_.observe_stream so nested shape-sweep
  // routers stay silent; every scan below is observe-only (pure reads of the
  // committed usage) and runs from the serial commit points.
  const bool observing = options_.observe_stream && observe::active();
  std::int32_t obs_batch_series = -1;
  std::int32_t obs_round_series = -1;
  if (observing) {
    obs_batch_series =
        observe::recorder().begin_series(observe::Stream::kRouteBatch);
    obs_round_series =
        observe::recorder().begin_series(observe::Stream::kRouteRound);
  }
  auto overflow_now = [&] {
    int over_edges = 0;
    double total = 0.0;
    for (std::int32_t e = 0; e < h_size_; ++e) {
      const double u = edges_[static_cast<std::size_t>(e)].usage;
      if (u > options_.h_capacity) {
        ++over_edges;
        total += u - options_.h_capacity;
      }
    }
    for (std::size_t e = static_cast<std::size_t>(h_size_); e < edges_.size();
         ++e) {
      const double u = edges_[e].usage;
      if (u > options_.v_capacity) {
        ++over_edges;
        total += u - options_.v_capacity;
      }
    }
    return std::pair<int, double>(over_edges, total);
  };
  // Congestion heatmap: per-GCell worst incident-edge utilization,
  // max-pooled onto a bounded grid so frames stay small on large designs.
  auto emit_heatmap = [&](std::int64_t round) {
    const int bx = std::min(nx_, 48);
    const int by = std::min(ny_, 48);
    if (bx <= 0 || by <= 0) return;
    std::vector<double> grid(
      static_cast<std::size_t>(bx) * static_cast<std::size_t>(by), 0.0);
    auto pool = [&](int x, int y, double util) {
      const int gx = std::min(bx - 1, x * bx / nx_);
      const int gy = std::min(by - 1, y * by / ny_);
      double& cell = grid[static_cast<std::size_t>(gy) *
                            static_cast<std::size_t>(bx) +
                        static_cast<std::size_t>(gx)];
      cell = std::max(cell, util);
    };
    for (int y = 0; y < ny_; ++y) {
      for (int x = 0; x + 1 < nx_; ++x) {
        pool(x, y, edges_[h_index(x, y)].usage / options_.h_capacity);
      }
    }
    for (int y = 0; y + 1 < ny_; ++y) {
      for (int x = 0; x < nx_; ++x) {
        pool(x, y,
             edges_[static_cast<std::size_t>(v_edge(x, y))].usage /
                 options_.v_capacity);
      }
    }
    observe::recorder().record_frame(observe::Stream::kRouteHeatmap,
                                     obs_round_series, round, bx, by,
                                     std::move(grid));
  };

  // Initial routing in parallel batches: route against the frozen usage,
  // commit serially in net order between batches.
  for (std::size_t base = 0; base < routes.size(); base += kRouteBatch) {
    const std::size_t batch_end = std::min(routes.size(), base + kRouteBatch);
    exec::parallel_for(base, batch_end, kNetGrain, [&](std::size_t i) {
      NetRoute& route = routes[i];
      if (faults_on) {
        if (const auto kind = fault::trigger(
                "route.maze", static_cast<std::uint64_t>(route.net.value()))) {
          switch (*kind) {
            case fault::FaultKind::kAlloc:
              throw std::bad_alloc();
            case fault::FaultKind::kPoison:
              net_poisoned[i] = 1;
              break;  // route normally; poison applies at collection
            default:  // error / timeout: this net's route failed
              net_failed[i] = 1;
              return;
          }
        }
      }
      route_net(route, nullptr);
    });
    for (std::size_t i = base; i < batch_end; ++i) {
      commit(routes[i].edges, +1);
    }
    const std::int64_t batch_index =
        static_cast<std::int64_t>(base / kRouteBatch);
    if (observing && observe::recorder().want(batch_index)) {
      const auto [over_edges, total_over] = overflow_now();
      observe::recorder().record(
          observe::Stream::kRouteBatch, obs_batch_series, batch_index, 0,
          {static_cast<double>(batch_end - base),
           static_cast<double>(batch_end), static_cast<double>(over_edges),
           total_over});
    }
  }
  PPACD_COUNT("route.nets.routed", routes.size());

  // Serial retries for failed nets, in net order (deterministic), each
  // attempt re-consulting the fault plan with its attempt number so
  // probabilistic (transient) faults can clear while permanent ones keep
  // firing. Nets that exhaust the budget stay unrouted (partial result).
  int failed_final = 0;
  if (faults_on) {
    for (std::size_t i = 0; i < routes.size(); ++i) {
      if (!net_failed[i]) continue;
      NetRoute& route = routes[i];
      bool routed = false;
      for (int attempt = 1; attempt <= policy.route_retries; ++attempt) {
        if (policy.route_backoff_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(policy.route_backoff_ms * attempt));
        }
        if (fault::trigger("route.maze",
                       static_cast<std::uint64_t>(route.net.value()),
                           static_cast<std::uint32_t>(attempt))) {
          continue;  // still failing on this attempt
        }
        route_net(route, nullptr);
        commit(route.edges, +1);
        routed = true;
        break;
      }
      if (!routed) ++failed_final;
    }
    PPACD_COUNT("route.nets.failed", failed_final);
  }

  // Negotiated rip-up-and-reroute. Reroute buffers are hoisted out of the
  // round loop and reused (clear keeps capacity), so negotiation rounds
  // allocate only when a net's new route outgrows its old storage.
  std::vector<std::uint8_t> flagged(routes.size(), 0);
  std::vector<std::size_t> victims;
  struct Reroute {
    std::vector<std::int32_t> edges;
    std::vector<std::int32_t> seg_end;
  };
  std::vector<Reroute> rerouted(kRerouteBatch);
  for (int round = 0; round < options_.rrr_rounds; ++round) {
    // Mark overflowed edges and bump their history.
    auto edge_overflowed = [&](std::int32_t e) {
      const EdgeState& state = edges_[static_cast<std::size_t>(e)];
      const double cap = e < h_size_ ? options_.h_capacity : options_.v_capacity;
      return state.usage > cap;
    };
    int over_edges = 0;
    for (std::int32_t e = 0; e < h_size_; ++e) {
      EdgeState& state = edges_[static_cast<std::size_t>(e)];
      if (state.usage > options_.h_capacity) {
        state.history += options_.history_increment;
        ++over_edges;
      }
    }
    for (std::size_t e = static_cast<std::size_t>(h_size_); e < edges_.size();
         ++e) {
      EdgeState& state = edges_[e];
      if (state.usage > options_.v_capacity) {
        state.history += options_.history_increment;
        ++over_edges;
      }
    }
    if (over_edges == 0) {
      if (observing) {
        observe::recorder().record(observe::Stream::kRouteRound,
                                   obs_round_series, round, 0,
                                   {0.0, 0.0, 0.0});
      }
      break;
    }
    PPACD_COUNT("route.rrr.rounds", 1);
    PPACD_HIST("route.rrr.over_edges", over_edges);

    // Flag the nets crossing an overflowed edge (pure parallel scan), then
    // reroute them in batches: rip the whole batch out, reroute every net
    // against the frozen usage, commit back in net order.
    flagged.assign(routes.size(), 0);
    exec::parallel_for(0, routes.size(), kNetGrain, [&](std::size_t i) {
      for (const std::int32_t e : routes[i].edges) {
        if (edge_overflowed(e)) {
          flagged[i] = 1;
          return;
        }
      }
    });
    victims.clear();
    for (std::size_t i = 0; i < routes.size(); ++i) {
      if (flagged[i]) victims.push_back(i);
    }
    PPACD_COUNT("route.maze.reroutes", victims.size());
    if (observing) {
      observe::recorder().record(
          observe::Stream::kRouteRound, obs_round_series, round, 0,
          {static_cast<double>(over_edges),
           static_cast<double>(victims.size()), overflow_now().second});
      emit_heatmap(round);
    }

    for (std::size_t base = 0; base < victims.size(); base += kRerouteBatch) {
      const std::size_t batch_end = std::min(victims.size(), base + kRerouteBatch);
      exec::parallel_for(base, batch_end, kNetGrain, [&](std::size_t v) {
        const NetRoute& route = routes[victims[v]];
        // Virtual rip-up: cost against the frozen usage minus this net's own
        // committed edges, leaving the shared state untouched until the
        // serial commit below. The lane's epoch-stamped table resets in O(1).
        ExcludedUsage& own = slots_[exec::this_worker_slot()].own;
        own.clear();
        for (const std::int32_t e : route.edges) {
          own.add(e, 1.0);
        }
        Reroute& next = rerouted[v - base];
        next.edges.clear();
        next.seg_end.clear();
        for (const SegSpan& seg : route.segments) {
          if (options_.maze_fallback) {
            route_maze(seg.a, seg.b, &own, next.edges);
          } else {
            route_segment(seg.a, seg.b, &own, next.edges);
          }
          next.seg_end.push_back(static_cast<std::int32_t>(next.edges.size()));
        }
      });
      for (std::size_t v = base; v < batch_end; ++v) {
        NetRoute& route = routes[victims[v]];
        const Reroute& next = rerouted[v - base];
        commit(route.edges, -1);
        route.edges.assign(next.edges.begin(), next.edges.end());
        for (std::size_t s = 0; s < route.segments.size(); ++s) {
          route.segments[s].end = next.seg_end[s];
        }
        commit(route.edges, +1);
      }
    }
  }

  // Final congestion picture (also covers rrr_rounds == 0 and early exits).
  if (observing) emit_heatmap(options_.rrr_rounds);

  // Collect results. The clean path keeps the original per-segment summation
  // order exactly (bit-identical wirelength).
  RouteResult result;
  result.grid_nx = nx_;
  result.grid_ny = ny_;
  result.failed_nets = failed_final;
  auto net_wirelength = [&](const NetRoute& route, double& wl) {
    std::int32_t prev = 0;
    for (const SegSpan& seg : route.segments) {
      wl += static_cast<double>(seg.end - prev) * options_.gcell_um;
      prev = seg.end;
    }
  };
  for (std::size_t i = 0; i < routes.size(); ++i) {
    if (faults_on && net_poisoned[i]) {
      result.wirelength_um += fault::poison_value();
      continue;
    }
    net_wirelength(routes[i], result.wirelength_um);
  }
  if (!std::isfinite(result.wirelength_um)) {
    // Poisoned nets made the total non-finite: degrade to a partial result
    // by dropping their contribution and reporting them as failed.
    result.wirelength_um = 0.0;
    for (std::size_t i = 0; i < routes.size(); ++i) {
      if (faults_on && net_poisoned[i]) {
        ++result.failed_nets;
        continue;
      }
      net_wirelength(routes[i], result.wirelength_um);
    }
  }
  result.edge_utilization.reserve(edges_.size());
  for (std::int32_t e = 0; e < h_size_; ++e) {
    const double u = edges_[static_cast<std::size_t>(e)].usage;
    const double util = u / options_.h_capacity;
    result.edge_utilization.push_back(util);
    result.max_utilization = std::max(result.max_utilization, util);
    if (u > options_.h_capacity) {
      ++result.overflow_edges;
      result.total_overflow += u - options_.h_capacity;
    }
  }
  for (std::size_t e = static_cast<std::size_t>(h_size_); e < edges_.size();
       ++e) {
    const double u = edges_[e].usage;
    const double util = u / options_.v_capacity;
    result.edge_utilization.push_back(util);
    result.max_utilization = std::max(result.max_utilization, util);
    if (u > options_.v_capacity) {
      ++result.overflow_edges;
      result.total_overflow += u - options_.v_capacity;
    }
  }
  std::uint64_t scratch_resets = 0;
  for (const SlotScratch& slot : slots_) scratch_resets += slot.own.resets();
  PPACD_COUNT("scratch.epoch.resets", scratch_resets);
  PPACD_GAUGE_SET("route.overflow_edges", result.overflow_edges);
  PPACD_GAUGE_SET("route.wirelength_um", result.wirelength_um);
  PPACD_LOG_DEBUG("route") << nl.name() << ": rWL " << result.wirelength_um
                           << " um, overflow edges " << result.overflow_edges;
  return result;
}

}  // namespace ppacd::route
