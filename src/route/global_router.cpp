#include "route/global_router.hpp"

#include <algorithm>
#include "util/assert.hpp"
#include <chrono>
#include <cmath>
#include <new>
#include <queue>
#include <thread>

#include "exec/exec.hpp"
#include "observe/observe.hpp"
#include "route/steiner.hpp"
#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"

namespace ppacd::route {

namespace {

/// Nets routed concurrently between usage commits. Within a batch every net
/// routes against the same frozen usage/history snapshot; usage is then
/// committed serially in batch order, so the outcome is identical for any
/// thread count (the batch boundaries depend only on the net ordering).
constexpr std::size_t kRouteBatch = 64;

/// Rip-up-and-reroute uses smaller batches: rerouted nets are blind to each
/// other within a batch, and congested nets herd onto the same escape routes
/// when too many reroute against the same snapshot.
constexpr std::size_t kRerouteBatch = 8;

/// Nets per parallel chunk inside a batch / topology build.
constexpr std::size_t kNetGrain = 4;

}  // namespace

double RouteResult::top_congestion(double percent) const {
  if (edge_utilization.empty()) return 0.0;
  std::vector<double> sorted = edge_utilization;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const std::size_t count = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(sorted.size()) * percent /
                                  100.0));
  double sum = 0.0;
  for (std::size_t i = 0; i < count; ++i) sum += sorted[i];
  return sum / static_cast<double>(count);
}

GlobalRouter::GlobalRouter(const netlist::Netlist& netlist,
                           const std::vector<geom::Point>& positions,
                           const geom::Rect& core, const RouteOptions& options)
    : nl_(&netlist), positions_(&positions), core_(core), options_(options) {
  nx_ = std::max(2, static_cast<int>(std::ceil(core.width() / options.gcell_um)));
  ny_ = std::max(2, static_cast<int>(std::ceil(core.height() / options.gcell_um)));
  h_usage_.assign(
        static_cast<std::size_t>(nx_ - 1) * static_cast<std::size_t>(ny_), 0.0);
  v_usage_.assign(
        static_cast<std::size_t>(nx_) * static_cast<std::size_t>(ny_ - 1), 0.0);
  h_history_.assign(h_usage_.size(), 0.0);
  v_history_.assign(v_usage_.size(), 0.0);
}

GlobalRouter::GridPoint GlobalRouter::gcell_of(const geom::Point& p) const {
  GridPoint g;
  g.x = std::clamp(static_cast<int>((p.x - core_.lx) / options_.gcell_um), 0, nx_ - 1);
  g.y = std::clamp(static_cast<int>((p.y - core_.ly) / options_.gcell_um), 0, ny_ - 1);
  return g;
}

std::size_t GlobalRouter::h_index(int x, int y) const {
  PPACD_DCHECK(x >= 0 && x < nx_ - 1 && y >= 0 && y < ny_,
               "h edge (" << x << ", " << y << ") outside " << nx_ << " x " << ny_);
  return static_cast<std::size_t>(y) * static_cast<std::size_t>(nx_ - 1) +
           static_cast<std::size_t>(x);
}

std::size_t GlobalRouter::v_index(int x, int y) const {
  PPACD_DCHECK(x >= 0 && x < nx_ && y >= 0 && y < ny_ - 1,
               "v edge (" << x << ", " << y << ") outside " << nx_ << " x " << ny_);
  return static_cast<std::size_t>(x) * static_cast<std::size_t>(ny_ - 1) +
           static_cast<std::size_t>(y);
}

std::size_t GlobalRouter::edge_key(const EdgeRef& e) const {
  return e.horizontal ? h_index(e.x, e.y) : h_usage_.size() + v_index(e.x, e.y);
}

double GlobalRouter::edge_cost(const EdgeRef& e,
                               const ExcludedUsage* excluded) const {
  double usage = e.horizontal ? h_usage_[h_index(e.x, e.y)]
                              : v_usage_[v_index(e.x, e.y)];
  if (excluded != nullptr) {
    usage -= excluded->get(static_cast<std::int32_t>(edge_key(e)), 0.0);
  }
  const double history = e.horizontal ? h_history_[h_index(e.x, e.y)]
                                      : v_history_[v_index(e.x, e.y)];
  const double cap = e.horizontal ? options_.h_capacity : options_.v_capacity;
  double cost = 1.0 + history;
  if (usage + 1.0 > cap) {
    cost += options_.overflow_penalty * (usage + 1.0 - cap);
  }
  return cost;
}

double GlobalRouter::path_cost(const std::vector<EdgeRef>& path,
                               const ExcludedUsage* excluded) const {
  double cost = 0.0;
  for (const EdgeRef& e : path) cost += edge_cost(e, excluded);
  return cost;
}

void GlobalRouter::commit(const std::vector<EdgeRef>& path, int delta) {
  for (const EdgeRef& e : path) {
    double& usage =
        e.horizontal ? h_usage_[h_index(e.x, e.y)] : v_usage_[v_index(e.x, e.y)];
    usage += delta;
    PPACD_DCHECK(usage >= -1e-9, "negative edge usage " << usage);
  }
}

void GlobalRouter::append_h(std::vector<EdgeRef>& path, int x0, int x1, int y) const {
  const int lo = std::min(x0, x1);
  const int hi = std::max(x0, x1);
  path.reserve(path.size() + static_cast<std::size_t>(hi - lo));
  for (int x = lo; x < hi; ++x) path.push_back(EdgeRef{true, x, y});
}

void GlobalRouter::append_v(std::vector<EdgeRef>& path, int x, int y0, int y1) const {
  const int lo = std::min(y0, y1);
  const int hi = std::max(y0, y1);
  path.reserve(path.size() + static_cast<std::size_t>(hi - lo));
  for (int y = lo; y < hi; ++y) path.push_back(EdgeRef{false, x, y});
}

void GlobalRouter::route_segment(GridPoint a, GridPoint b,
                                 const ExcludedUsage* excluded,
                                 std::vector<EdgeRef>& out) const {
  out.clear();
  if (a.x == b.x && a.y == b.y) return;
  if (a.x == b.x) {
    append_v(out, a.x, a.y, b.y);
    return;
  }
  if (a.y == b.y) {
    append_h(out, a.x, b.x, a.y);
    return;
  }

  // Each candidate is built in the lane's reusable buffer; the cheapest one
  // is kept by swapping buffers, so steady-state routing never allocates.
  // The candidates are considered in the same order (and the first strictly
  // cheaper one wins) as the old one-vector-per-candidate version.
  std::vector<EdgeRef>& cand = slots_[exec::this_worker_slot()].cand;
  double best_cost = std::numeric_limits<double>::infinity();
  auto consider = [&]() {
    const double cost = path_cost(cand, excluded);
    if (cost < best_cost) {
      best_cost = cost;
      std::swap(out, cand);
    }
  };

  // L-shapes.
  cand.clear();
  append_h(cand, a.x, b.x, a.y);
  append_v(cand, b.x, a.y, b.y);
  consider();
  cand.clear();
  append_v(cand, a.x, a.y, b.y);
  append_h(cand, a.x, b.x, b.y);
  consider();

  // Z-shapes: vertical jog at sampled intermediate columns, horizontal jog
  // at sampled intermediate rows.
  const int dx = std::abs(a.x - b.x);
  const int dy = std::abs(a.y - b.y);
  const int samples = options_.z_samples;
  if (dx > 1) {
    const int step = std::max(1, dx / (samples + 1));
    for (int xm = std::min(a.x, b.x) + step; xm < std::max(a.x, b.x); xm += step) {
      cand.clear();
      append_h(cand, a.x, xm, a.y);
      append_v(cand, xm, a.y, b.y);
      append_h(cand, xm, b.x, b.y);
      consider();
    }
  }
  if (dy > 1) {
    const int step = std::max(1, dy / (samples + 1));
    for (int ym = std::min(a.y, b.y) + step; ym < std::max(a.y, b.y); ym += step) {
      cand.clear();
      append_v(cand, a.x, a.y, ym);
      append_h(cand, a.x, b.x, ym);
      append_v(cand, b.x, ym, b.y);
      consider();
    }
  }
}

void GlobalRouter::route_maze(GridPoint a, GridPoint b,
                              const ExcludedUsage* excluded,
                              std::vector<EdgeRef>& out) const {
  // Bounded search window.
  const int x0 = std::max(0, std::min(a.x, b.x) - options_.maze_margin);
  const int x1 = std::min(nx_ - 1, std::max(a.x, b.x) + options_.maze_margin);
  const int y0 = std::max(0, std::min(a.y, b.y) - options_.maze_margin);
  const int y1 = std::min(ny_ - 1, std::max(a.y, b.y) + options_.maze_margin);
  const int wx = x1 - x0 + 1;
  const int wy = y1 - y0 + 1;
  auto node_of = [&](int x, int y) { return (y - y0) * wx + (x - x0); };

  // Dijkstra state lives in the lane's scratch. The heap uses std::push_heap
  // / std::pop_heap with the same comparator a std::priority_queue would, so
  // the pop order (and thus the tie-breaking) is unchanged.
  SlotScratch& slot = slots_[exec::this_worker_slot()];
  std::vector<double>& dist = slot.maze_dist;
  std::vector<std::int32_t>& parent = slot.maze_parent;
  dist.assign(static_cast<std::size_t>(wx) * static_cast<std::size_t>(wy),
              std::numeric_limits<double>::infinity());
  parent.assign(static_cast<std::size_t>(wx) * static_cast<std::size_t>(wy),
                -1);
  using QueueEntry = std::pair<double, std::int32_t>;
  std::vector<QueueEntry>& queue = slot.maze_heap;
  queue.clear();
  auto queue_push = [&queue](double d, std::int32_t node) {
    queue.emplace_back(d, node);
    std::push_heap(queue.begin(), queue.end(), std::greater<>{});
  };
  dist[static_cast<std::size_t>(node_of(a.x, a.y))] = 0.0;
  queue_push(0.0, node_of(a.x, a.y));
  const std::int32_t goal = node_of(b.x, b.y);

  while (!queue.empty()) {
    std::pop_heap(queue.begin(), queue.end(), std::greater<>{});
    const auto [d, node] = queue.back();
    queue.pop_back();
    if (d > dist[static_cast<std::size_t>(node)]) continue;
    if (node == goal) break;
    const int x = x0 + node % wx;
    const int y = y0 + node / wx;
    struct Step {
      int dx;
      int dy;
    };
    for (const Step step : {Step{1, 0}, Step{-1, 0}, Step{0, 1}, Step{0, -1}}) {
      const int mx = x + step.dx;
      const int my = y + step.dy;
      if (mx < x0 || mx > x1 || my < y0 || my > y1) continue;
      EdgeRef edge;
      if (step.dy == 0) {
        edge = EdgeRef{true, std::min(x, mx), y};
      } else {
        edge = EdgeRef{false, x, std::min(y, my)};
      }
      const double nd = d + edge_cost(edge, excluded);
      const std::int32_t next = node_of(mx, my);
      if (nd < dist[static_cast<std::size_t>(next)]) {
        dist[static_cast<std::size_t>(next)] = nd;
        parent[static_cast<std::size_t>(next)] = node;
        queue_push(nd, next);
      }
    }
  }
  if (!std::isfinite(dist[static_cast<std::size_t>(goal)])) {
    route_segment(a, b, excluded, out);  // defensive; window is connected
    return;
  }

  out.clear();
  // Path length = number of backtrack hops; count first so the single
  // append below never reallocates mid-loop.
  std::size_t hops = 0;
  for (std::int32_t node = goal; parent[static_cast<std::size_t>(node)] >= 0;
       node = parent[static_cast<std::size_t>(node)]) {
    ++hops;
  }
  out.reserve(hops);
  for (std::int32_t node = goal; parent[static_cast<std::size_t>(node)] >= 0;
       node = parent[static_cast<std::size_t>(node)]) {
    const std::int32_t prev = parent[static_cast<std::size_t>(node)];
    const int cx = x0 + node % wx;
    const int cy = y0 + node / wx;
    const int px = x0 + prev % wx;
    const int py = y0 + prev / wx;
    if (cy == py) {
      out.push_back(EdgeRef{true, std::min(cx, px), cy});
    } else {
      out.push_back(EdgeRef{false, cx, std::min(cy, py)});
    }
  }
}

RouteResult GlobalRouter::run() {
  auto result = run_impl(fault::DegradePolicy{});
  PPACD_CHECK(result.has_value(), "routing failed: " << result.error().code);
  return std::move(result).value();
}

fault::Expected<RouteResult, fault::FlowError> GlobalRouter::try_run(
    const fault::DegradePolicy& policy) {
  try {
    return run_impl(policy);
  } catch (const std::bad_alloc&) {
    return fault::Unexpected<fault::FlowError>(
        fault::make_error("route.maze", fault::FaultKind::kAlloc));
  }
}

fault::Expected<RouteResult, fault::FlowError> GlobalRouter::run_impl(
    const fault::DegradePolicy& policy) {
  const netlist::Netlist& nl = *nl_;

  // One scratch slot per worker lane; the virtual rip-up tables address the
  // full edge-key space (h edges then v edges).
  slots_.resize(exec::worker_slots());
  for (SlotScratch& slot : slots_) {
    slot.own.grow(h_usage_.size() + v_usage_.size());
  }

  // Build two-pin segments (in GCell space) for every routable net.
  struct NetRoute {
    netlist::NetId net = netlist::kInvalidId;
    std::vector<std::pair<GridPoint, GridPoint>> segments;
    std::vector<std::vector<EdgeRef>> paths;
    double hpwl = 0.0;
  };
  std::vector<netlist::NetId> routable;
  routable.reserve(nl.net_count());
  for (std::size_t ni = 0; ni < nl.net_count(); ++ni) {
    const netlist::NetId net_id = static_cast<netlist::NetId>(ni);
    const netlist::Net& net = nl.net(net_id);
    if (net.pins.size() < 2) continue;
    if (net.is_clock && !options_.route_clock_nets) continue;
    routable.push_back(net_id);
  }

  // Topology construction is per-net independent (pure reads + its own slot).
  std::vector<NetRoute> routes(routable.size());
  exec::parallel_for(0, routable.size(), kNetGrain, [&](std::size_t i) {
    const netlist::NetId net_id = routable[i];
    const netlist::Net& net = nl.net(net_id);
    std::vector<geom::Point>& pins = slots_[exec::this_worker_slot()].pins;
    pins.clear();
    pins.reserve(net.pins.size());
    geom::BBox box;
    for (netlist::PinId pid : net.pins) {
      const netlist::Pin& pin = nl.pin(pid);
      const geom::Point pos = pin.kind == netlist::PinKind::kTopPort
                                  ? nl.port(pin.port).position
                                  : positions_->at(pin.cell.index());
      pins.push_back(pos);
      box.expand(pos);
    }
    NetRoute& route = routes[i];
    route.net = net_id;
    route.hpwl = box.half_perimeter();
    const std::vector<Segment> topology = options_.use_steiner_topology
                                              ? steiner_segments(pins)
                                              : spanning_segments(pins);
    for (const Segment& seg : topology) {
      route.segments.emplace_back(gcell_of(seg.a), gcell_of(seg.b));
    }
  });

  // Short nets first: they have the least routing flexibility. Net id breaks
  // HPWL ties so the order (and thus every downstream result) is total.
  std::sort(routes.begin(), routes.end(),
            [](const NetRoute& a, const NetRoute& b) {
              if (a.hpwl != b.hpwl) return a.hpwl < b.hpwl;
              return a.net < b.net;
            });

  // Fault site `route.maze`, keyed by net id so firing is independent of
  // the batch schedule. Failed nets skip the batch and are retried serially
  // below; poisoned nets route normally but their wirelength contribution
  // is NaN-poisoned at collection.
  const bool faults_on = fault::plan_active();
  std::vector<std::uint8_t> net_failed(faults_on ? routes.size() : 0, 0);
  std::vector<std::uint8_t> net_poisoned(faults_on ? routes.size() : 0, 0);

  // Flight recorder. Gated on options_.observe_stream so nested shape-sweep
  // routers stay silent; every scan below is observe-only (pure reads of the
  // committed usage) and runs from the serial commit points.
  const bool observing = options_.observe_stream && observe::active();
  std::int32_t obs_batch_series = -1;
  std::int32_t obs_round_series = -1;
  if (observing) {
    obs_batch_series =
        observe::recorder().begin_series(observe::Stream::kRouteBatch);
    obs_round_series =
        observe::recorder().begin_series(observe::Stream::kRouteRound);
  }
  auto overflow_now = [&] {
    int edges = 0;
    double total = 0.0;
    for (const double u : h_usage_) {
      if (u > options_.h_capacity) {
        ++edges;
        total += u - options_.h_capacity;
      }
    }
    for (const double u : v_usage_) {
      if (u > options_.v_capacity) {
        ++edges;
        total += u - options_.v_capacity;
      }
    }
    return std::pair<int, double>(edges, total);
  };
  // Congestion heatmap: per-GCell worst incident-edge utilization,
  // max-pooled onto a bounded grid so frames stay small on large designs.
  auto emit_heatmap = [&](std::int64_t round) {
    const int bx = std::min(nx_, 48);
    const int by = std::min(ny_, 48);
    if (bx <= 0 || by <= 0) return;
    std::vector<double> grid(
      static_cast<std::size_t>(bx) * static_cast<std::size_t>(by), 0.0);
    auto pool = [&](int x, int y, double util) {
      const int gx = std::min(bx - 1, x * bx / nx_);
      const int gy = std::min(by - 1, y * by / ny_);
      double& cell = grid[static_cast<std::size_t>(gy) *
                            static_cast<std::size_t>(bx) +
                        static_cast<std::size_t>(gx)];
      cell = std::max(cell, util);
    };
    for (int y = 0; y < ny_; ++y) {
      for (int x = 0; x + 1 < nx_; ++x) {
        pool(x, y, h_usage_[h_index(x, y)] / options_.h_capacity);
      }
    }
    for (int y = 0; y + 1 < ny_; ++y) {
      for (int x = 0; x < nx_; ++x) {
        pool(x, y, v_usage_[v_index(x, y)] / options_.v_capacity);
      }
    }
    observe::recorder().record_frame(observe::Stream::kRouteHeatmap,
                                     obs_round_series, round, bx, by,
                                     std::move(grid));
  };

  // Initial routing in parallel batches: route against the frozen usage,
  // commit serially in net order between batches.
  for (std::size_t base = 0; base < routes.size(); base += kRouteBatch) {
    const std::size_t batch_end = std::min(routes.size(), base + kRouteBatch);
    exec::parallel_for(base, batch_end, kNetGrain, [&](std::size_t i) {
      NetRoute& route = routes[i];
      if (faults_on) {
        if (const auto kind = fault::trigger(
                "route.maze", static_cast<std::uint64_t>(route.net.value()))) {
          switch (*kind) {
            case fault::FaultKind::kAlloc:
              throw std::bad_alloc();
            case fault::FaultKind::kPoison:
              net_poisoned[i] = 1;
              break;  // route normally; poison applies at collection
            default:  // error / timeout: this net's route failed
              net_failed[i] = 1;
              return;
          }
        }
      }
      route.paths.resize(route.segments.size());
      for (std::size_t s = 0; s < route.segments.size(); ++s) {
        route_segment(route.segments[s].first, route.segments[s].second,
                      nullptr, route.paths[s]);
      }
    });
    for (std::size_t i = base; i < batch_end; ++i) {
      for (const auto& path : routes[i].paths) commit(path, +1);
    }
    const std::int64_t batch_index =
        static_cast<std::int64_t>(base / kRouteBatch);
    if (observing && observe::recorder().want(batch_index)) {
      const auto [over_edges, total_over] = overflow_now();
      observe::recorder().record(
          observe::Stream::kRouteBatch, obs_batch_series, batch_index, 0,
          {static_cast<double>(batch_end - base),
           static_cast<double>(batch_end), static_cast<double>(over_edges),
           total_over});
    }
  }
  PPACD_COUNT("route.nets.routed", routes.size());

  // Serial retries for failed nets, in net order (deterministic), each
  // attempt re-consulting the fault plan with its attempt number so
  // probabilistic (transient) faults can clear while permanent ones keep
  // firing. Nets that exhaust the budget stay unrouted (partial result).
  int failed_final = 0;
  if (faults_on) {
    for (std::size_t i = 0; i < routes.size(); ++i) {
      if (!net_failed[i]) continue;
      NetRoute& route = routes[i];
      bool routed = false;
      for (int attempt = 1; attempt <= policy.route_retries; ++attempt) {
        if (policy.route_backoff_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(policy.route_backoff_ms * attempt));
        }
        if (fault::trigger("route.maze",
                       static_cast<std::uint64_t>(route.net.value()),
                           static_cast<std::uint32_t>(attempt))) {
          continue;  // still failing on this attempt
        }
        route.paths.resize(route.segments.size());
        for (std::size_t s = 0; s < route.segments.size(); ++s) {
          route_segment(route.segments[s].first, route.segments[s].second,
                        nullptr, route.paths[s]);
        }
        for (const auto& path : route.paths) commit(path, +1);
        routed = true;
        break;
      }
      if (!routed) ++failed_final;
    }
    PPACD_COUNT("route.nets.failed", failed_final);
  }

  // Negotiated rip-up-and-reroute.
  for (int round = 0; round < options_.rrr_rounds; ++round) {
    // Mark overflowed edges and bump their history.
    auto overflowed = [&](const EdgeRef& e) {
      const double usage = e.horizontal ? h_usage_[h_index(e.x, e.y)]
                                        : v_usage_[v_index(e.x, e.y)];
      const double cap = e.horizontal ? options_.h_capacity : options_.v_capacity;
      return usage > cap;
    };
    int over_edges = 0;
    for (std::size_t i = 0; i < h_usage_.size(); ++i) {
      if (h_usage_[i] > options_.h_capacity) {
        h_history_[i] += options_.history_increment;
        ++over_edges;
      }
    }
    for (std::size_t i = 0; i < v_usage_.size(); ++i) {
      if (v_usage_[i] > options_.v_capacity) {
        v_history_[i] += options_.history_increment;
        ++over_edges;
      }
    }
    if (over_edges == 0) {
      if (observing) {
        observe::recorder().record(observe::Stream::kRouteRound,
                                   obs_round_series, round, 0,
                                   {0.0, 0.0, 0.0});
      }
      break;
    }
    PPACD_COUNT("route.rrr.rounds", 1);
    PPACD_HIST("route.rrr.over_edges", over_edges);

    // Flag the nets crossing an overflowed edge (pure parallel scan), then
    // reroute them in batches: rip the whole batch out, reroute every net
    // against the frozen usage, commit back in net order.
    std::vector<std::uint8_t> flagged(routes.size(), 0);
    exec::parallel_for(0, routes.size(), kNetGrain, [&](std::size_t i) {
      for (const auto& path : routes[i].paths) {
        for (const EdgeRef& e : path) {
          if (overflowed(e)) {
            flagged[i] = 1;
            return;
          }
        }
      }
    });
    std::vector<std::size_t> victims;
    for (std::size_t i = 0; i < routes.size(); ++i) {
      if (flagged[i]) victims.push_back(i);
    }
    PPACD_COUNT("route.maze.reroutes", victims.size());
    if (observing) {
      observe::recorder().record(
          observe::Stream::kRouteRound, obs_round_series, round, 0,
          {static_cast<double>(over_edges),
           static_cast<double>(victims.size()), overflow_now().second});
      emit_heatmap(round);
    }

    for (std::size_t base = 0; base < victims.size(); base += kRerouteBatch) {
      const std::size_t batch_end = std::min(victims.size(), base + kRerouteBatch);
      std::vector<std::vector<std::vector<EdgeRef>>> rerouted(batch_end - base);
      exec::parallel_for(base, batch_end, kNetGrain, [&](std::size_t v) {
        const NetRoute& route = routes[victims[v]];
        // Virtual rip-up: cost against the frozen usage minus this net's own
        // committed edges, leaving the shared state untouched until the
        // serial commit below. The lane's epoch-stamped table resets in O(1).
        ExcludedUsage& own = slots_[exec::this_worker_slot()].own;
        own.clear();
        for (const auto& path : route.paths) {
          for (const EdgeRef& e : path) {
            own.add(static_cast<std::int32_t>(edge_key(e)), 1.0);
          }
        }
        std::vector<std::vector<EdgeRef>>& paths = rerouted[v - base];
        paths.resize(route.segments.size());
        for (std::size_t s = 0; s < route.segments.size(); ++s) {
          if (options_.maze_fallback) {
            route_maze(route.segments[s].first, route.segments[s].second, &own,
                       paths[s]);
          } else {
            route_segment(route.segments[s].first, route.segments[s].second,
                          &own, paths[s]);
          }
        }
      });
      for (std::size_t v = base; v < batch_end; ++v) {
        NetRoute& route = routes[victims[v]];
        for (const auto& path : route.paths) commit(path, -1);
        route.paths = std::move(rerouted[v - base]);
        for (const auto& path : route.paths) commit(path, +1);
      }
    }
  }

  // Final congestion picture (also covers rrr_rounds == 0 and early exits).
  if (observing) emit_heatmap(options_.rrr_rounds);

  // Collect results. The clean path keeps the original per-path summation
  // order exactly (bit-identical wirelength).
  RouteResult result;
  result.grid_nx = nx_;
  result.grid_ny = ny_;
  result.failed_nets = failed_final;
  for (std::size_t i = 0; i < routes.size(); ++i) {
    if (faults_on && net_poisoned[i]) {
      result.wirelength_um += fault::poison_value();
      continue;
    }
    for (const auto& path : routes[i].paths) {
      result.wirelength_um += static_cast<double>(path.size()) * options_.gcell_um;
    }
  }
  if (!std::isfinite(result.wirelength_um)) {
    // Poisoned nets made the total non-finite: degrade to a partial result
    // by dropping their contribution and reporting them as failed.
    result.wirelength_um = 0.0;
    for (std::size_t i = 0; i < routes.size(); ++i) {
      if (faults_on && net_poisoned[i]) {
        ++result.failed_nets;
        continue;
      }
      for (const auto& path : routes[i].paths) {
        result.wirelength_um +=
            static_cast<double>(path.size()) * options_.gcell_um;
      }
    }
  }
  result.edge_utilization.reserve(h_usage_.size() + v_usage_.size());
  for (const double u : h_usage_) {
    const double util = u / options_.h_capacity;
    result.edge_utilization.push_back(util);
    result.max_utilization = std::max(result.max_utilization, util);
    if (u > options_.h_capacity) {
      ++result.overflow_edges;
      result.total_overflow += u - options_.h_capacity;
    }
  }
  for (const double u : v_usage_) {
    const double util = u / options_.v_capacity;
    result.edge_utilization.push_back(util);
    result.max_utilization = std::max(result.max_utilization, util);
    if (u > options_.v_capacity) {
      ++result.overflow_edges;
      result.total_overflow += u - options_.v_capacity;
    }
  }
  std::uint64_t scratch_resets = 0;
  for (const SlotScratch& slot : slots_) scratch_resets += slot.own.resets();
  PPACD_COUNT("scratch.epoch.resets", scratch_resets);
  PPACD_GAUGE_SET("route.overflow_edges", result.overflow_edges);
  PPACD_GAUGE_SET("route.wirelength_um", result.wirelength_um);
  PPACD_LOG_DEBUG("route") << nl.name() << ": rWL " << result.wirelength_um
                           << " um, overflow edges " << result.overflow_edges;
  return result;
}

}  // namespace ppacd::route
