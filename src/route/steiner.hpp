/// \file steiner.hpp
/// \brief Rectilinear spanning/Steiner topology for net decomposition.
///
/// The global router decomposes every multi-pin net into two-pin segments
/// along a rectilinear minimum spanning tree (Prim). An RMST is within 1.5x
/// of the optimal RSMT (and within ~1.1-1.25x in practice), which is
/// sufficient for the congestion/wirelength *trends* the paper's Eq. 4/5
/// costs measure.
#pragma once

#include <vector>

#include "geom/geometry.hpp"

namespace ppacd::route {

/// One two-pin connection of a net topology.
struct Segment {
  geom::Point a;
  geom::Point b;
};

/// Builds the RMST segment list over `pins` (k-1 segments for k >= 2 pins;
/// empty for fewer). O(k^2), fine for the fanouts in generated designs.
std::vector<Segment> spanning_segments(const std::vector<geom::Point>& pins);

/// RMST followed by greedy Steiner-point insertion: for every tree vertex,
/// pairs of incident edges are re-routed through the median point of the
/// three endpoints when that shortens the tree (the classic L-RST
/// refinement step). Result is never longer than the RMST.
std::vector<Segment> steiner_segments(const std::vector<geom::Point>& pins);

/// Total Manhattan length of `segments`.
double total_length(const std::vector<Segment>& segments);

}  // namespace ppacd::route
