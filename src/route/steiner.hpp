/// \file steiner.hpp
/// \brief Rectilinear spanning/Steiner topology for net decomposition.
///
/// The global router decomposes every multi-pin net into two-pin segments
/// along a rectilinear minimum spanning tree (Prim). An RMST is within 1.5x
/// of the optimal RSMT (and within ~1.1-1.25x in practice), which is
/// sufficient for the congestion/wirelength *trends* the paper's Eq. 4/5
/// costs measure.
///
/// Two API layers: the scratch-based `*_into` entry points run the whole
/// construction over contiguous coordinate arrays (SoA x/y columns, CSR
/// incidence lists) owned by a caller-provided TopoScratch, so a router
/// worker slot routes thousands of nets without allocating; the original
/// vector-returning functions remain as thin wrappers for checkers and
/// tests. Both layers produce bit-identical segment lists (same arithmetic,
/// same visit order — DESIGN.md §15).
#pragma once

#include <cstdint>
#include <vector>

#include "geom/geometry.hpp"
#include "util/soa.hpp"

namespace ppacd::route {

/// One two-pin connection of a net topology.
struct Segment {
  geom::Point a;
  geom::Point b;
};

/// Reusable buffers for topology construction. Plain data; safe to keep one
/// per worker slot. All vectors retain capacity across nets.
struct TopoScratch {
  util::SoaBlock<double, 2> pts;       ///< columns: x, y (pins + Steiner points)
  std::vector<std::int32_t> ea, eb;    ///< tree edges as point-index pairs
  std::vector<std::int32_t> inc_start; ///< CSR incidence: offsets (n+1)
  std::vector<std::int32_t> inc_fill;  ///< CSR fill cursors during build
  std::vector<std::int32_t> inc_list;  ///< CSR incidence: edge ids (2*edges)
  std::vector<std::uint8_t> in_tree;   ///< Prim: vertex already in tree
  std::vector<double> best_dist;       ///< Prim: cheapest attachment cost
  std::vector<std::int32_t> best_parent;  ///< Prim: cheapest attachment vertex
};

/// RMST over `pins`; appends k-1 segments to `out` (cleared first; empty for
/// fewer than 2 pins). O(k^2), fine for the fanouts in generated designs.
void spanning_segments_into(const std::vector<geom::Point>& pins,
                            TopoScratch& scratch, std::vector<Segment>& out);

/// RMST followed by greedy Steiner-point insertion: for every tree vertex,
/// pairs of incident edges are re-routed through the median point of the
/// three endpoints when that shortens the tree (the classic L-RST
/// refinement step). Result is never longer than the RMST. Appends to `out`
/// (cleared first).
void steiner_segments_into(const std::vector<geom::Point>& pins,
                           TopoScratch& scratch, std::vector<Segment>& out);

/// Wrapper over spanning_segments_into with throwaway scratch.
std::vector<Segment> spanning_segments(const std::vector<geom::Point>& pins);

/// Wrapper over steiner_segments_into with throwaway scratch.
std::vector<Segment> steiner_segments(const std::vector<geom::Point>& pins);

/// Total Manhattan length of `segments`.
double total_length(const std::vector<Segment>& segments);

}  // namespace ppacd::route
