/// \file stats.hpp
/// \brief Descriptive statistics and metric helpers shared by benches and the
/// ML evaluation (MAE, R2) of Section 4.4.
#pragma once

#include <cstddef>
#include <vector>

namespace ppacd::util {

/// Summary of a sample: count, mean, standard deviation, min and max.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Computes the summary of `values`; all fields zero for an empty input.
Summary summarize(const std::vector<double>& values);

/// Arithmetic mean; 0 for an empty input.
double mean(const std::vector<double>& values);

/// Population standard deviation; 0 for fewer than two values.
double stddev(const std::vector<double>& values);

/// Value at quantile q in [0,1] using linear interpolation on sorted data.
/// Requires a non-empty input.
double quantile(std::vector<double> values, double q);

/// Mean absolute error between equally sized prediction/label vectors.
double mean_absolute_error(const std::vector<double>& predicted,
                           const std::vector<double>& actual);

/// Coefficient of determination R^2 = 1 - SS_res / SS_tot.
/// Returns 0 when the labels have zero variance.
double r2_score(const std::vector<double>& predicted,
                const std::vector<double>& actual);

/// Percentage improvement of `ours` relative to `base` where smaller is
/// better: 100 * (base - ours) / |base|. Returns 0 when base == 0.
double percent_improvement(double base, double ours);

}  // namespace ppacd::util
