/// \file logging.hpp
/// \brief Minimal leveled logger used across the library.
///
/// The logger writes to stderr and is intentionally tiny: benches and tests
/// frequently raise the level to keep output focused on the reproduced tables.
///
/// Thread safety: the level is an atomic and each statement is emitted as one
/// formatted write, so lines from concurrent threads never interleave
/// mid-line. An optional monotonic timestamp prefix ([seconds since process
/// start]) supports eyeballing phase timings without full telemetry.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace ppacd::util {

/// Severity levels, ordered: messages below the global threshold are dropped.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kSilent = 4 };

/// Sets the global logging threshold (atomic; safe from any thread).
void set_log_level(LogLevel level);

/// Returns the current global logging threshold.
LogLevel log_level();

/// Enables/disables the monotonic `[  12.345]` timestamp prefix (seconds
/// since the first log call). Off by default.
void set_log_timestamps(bool enabled);

/// Returns whether the timestamp prefix is on.
bool log_timestamps();

/// Emits one log line `[LEVEL] tag: message` if `level` passes the threshold.
void log_line(LogLevel level, std::string_view tag, std::string_view message);

namespace detail {

/// Stream-style log statement builder; flushes on destruction.
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view tag) : level_(level), tag_(tag) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { log_line(level_, tag_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string tag_;
  std::ostringstream stream_;
};

}  // namespace detail

/// Usage: `PPACD_LOG_INFO("place") << "iter " << i << " hpwl " << hpwl;`
#define PPACD_LOG_DEBUG(tag) ::ppacd::util::detail::LogStream(::ppacd::util::LogLevel::kDebug, (tag))
#define PPACD_LOG_INFO(tag) ::ppacd::util::detail::LogStream(::ppacd::util::LogLevel::kInfo, (tag))
#define PPACD_LOG_WARN(tag) ::ppacd::util::detail::LogStream(::ppacd::util::LogLevel::kWarn, (tag))
#define PPACD_LOG_ERROR(tag) ::ppacd::util::detail::LogStream(::ppacd::util::LogLevel::kError, (tag))

}  // namespace ppacd::util
