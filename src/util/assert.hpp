/// \file assert.hpp
/// \brief Project assertion macros replacing raw assert().
///
/// Two flavors:
///   * PPACD_CHECK(cond, msg) — always evaluates `cond`. On failure it logs
///     one error line through util::logging (file:line, the condition text,
///     and `msg`) and then aborts in debug/check builds (NDEBUG unset, or
///     PPACD_CHECK_FATAL defined — the sanitizer presets define it so a
///     violated precondition fails the run instead of sailing on into
///     undefined behavior). In plain release builds the failure is logged
///     and execution continues — a corrupted run is better diagnosed by the
///     src/check validators than by an opaque release abort.
///   * PPACD_DCHECK(cond, msg) — compiled out entirely when PPACD_CHECK
///     would not abort (the assert() behavior); for hot paths where even
///     the branch matters (per-edge grid index math, inner placer loops).
///
/// `msg` is pasted into a logger stream, so it may chain insertions:
///   PPACD_CHECK(size == expected, "got " << size << ", want " << expected);
#pragma once

#include <cstdlib>

#include "util/logging.hpp"

#if !defined(NDEBUG) || defined(PPACD_CHECK_FATAL)
#define PPACD_CHECK_ABORTS_ 1
#else
#define PPACD_CHECK_ABORTS_ 0
#endif

#define PPACD_CHECK(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      PPACD_LOG_ERROR("check") << __FILE__ << ":" << __LINE__               \
                               << ": check failed: " #cond ": " << msg;     \
      if (PPACD_CHECK_ABORTS_) std::abort();                                \
    }                                                                       \
  } while (0)

#if PPACD_CHECK_ABORTS_
#define PPACD_DCHECK(cond, msg) PPACD_CHECK(cond, msg)
#else
/// Dead branch: type-checks the operands without evaluating them.
#define PPACD_DCHECK(cond, msg)     \
  do {                              \
    if (false) PPACD_CHECK(cond, msg); \
  } while (0)
#endif
