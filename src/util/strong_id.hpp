/// \file strong_id.hpp
/// \brief Tagged integer ids + typed containers: compile-time ID-domain safety.
///
/// Every entity id in the system (CellId, NetId, PinId, ClusterId, ...) used
/// to be a bare `std::int32_t` alias, so passing a NetId where a CellId was
/// expected compiled silently and every accessor carried an unchecked
/// `static_cast<std::size_t>(id)`. `StrongId<Tag>` makes each domain a
/// distinct type: construction from integers is explicit, cross-domain
/// comparison and assignment do not compile, and the only ways back to an
/// integer are the named accessors `value()` (the raw int32) and `index()`
/// (the container subscript). `IdVector<Id, T>` / `IdSpan<Id, T>` close the
/// loop: containers subscriptable only by their own id type, so `cells[net]`
/// is a compile error instead of a latent cross-domain bug.
///
/// Conventions:
///   * default-constructed ids are invalid (value -1); `kInvalidId` is a
///     universal sentinel assignable to / comparable with any StrongId;
///   * `index()` is an unchecked cast (exactly the cost of the idiom it
///     replaces) -- containers' `.at()` still bounds-check, and invalid ids
///     map to SIZE_MAX-ish subscripts that any check catches;
///   * ids hash (std::hash specialization), order (same-type only), print
///     (operator<<), and increment, so they work as map keys, sort keys, and
///     range-for counters via `IdRange`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <type_traits>
#include <vector>

namespace ppacd::util {

/// A tagged 32-bit id. `Tag` is any (possibly incomplete) type used purely
/// to make distinct instantiations incompatible.
template <typename Tag>
class StrongId {
 public:
  using underlying_type = std::int32_t;
  using tag_type = Tag;

  /// Default: the invalid sentinel (-1).
  constexpr StrongId() = default;

  /// Explicit from any integer type (signed or not); the pre-StrongId idiom
  /// `static_cast<CellId>(i)` keeps compiling through this constructor.
  template <typename Int, std::enable_if_t<std::is_integral_v<Int>, int> = 0>
  explicit constexpr StrongId(Int raw) : value_(static_cast<std::int32_t>(raw)) {}

  /// The raw integer value (-1 when invalid).
  constexpr std::int32_t value() const { return value_; }

  /// The container subscript. Unchecked: an invalid id wraps to a huge
  /// subscript that bounds-checked access (`at`) rejects.
  constexpr std::size_t index() const { return static_cast<std::size_t>(value_); }

  constexpr bool valid() const { return value_ >= 0; }

  // Same-type comparisons only: comparing a CellId with a NetId (or a bare
  // int) is a compile error by omission.
  friend constexpr bool operator==(StrongId a, StrongId b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(StrongId a, StrongId b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(StrongId a, StrongId b) { return a.value_ < b.value_; }
  friend constexpr bool operator<=(StrongId a, StrongId b) { return a.value_ <= b.value_; }
  friend constexpr bool operator>(StrongId a, StrongId b) { return a.value_ > b.value_; }
  friend constexpr bool operator>=(StrongId a, StrongId b) { return a.value_ >= b.value_; }

  /// Pre-increment, for dense-id counting loops (see IdRange).
  constexpr StrongId& operator++() {
    ++value_;
    return *this;
  }

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << id.value_;
  }

 private:
  std::int32_t value_ = -1;
};

template <typename T>
struct is_strong_id : std::false_type {};
template <typename Tag>
struct is_strong_id<StrongId<Tag>> : std::true_type {};
template <typename T>
inline constexpr bool is_strong_id_v = is_strong_id<T>::value;

/// Universal invalid-id sentinel: converts to (and compares with) any
/// StrongId instantiation, so `CellId c = kInvalidId;` and
/// `if (net == kInvalidId)` read the same across domains.
struct InvalidId {
  template <typename Tag>
  constexpr operator StrongId<Tag>() const {  // NOLINT(google-explicit-constructor)
    return StrongId<Tag>{};
  }
  template <typename Tag>
  friend constexpr bool operator==(StrongId<Tag> id, InvalidId) { return !id.valid(); }
  template <typename Tag>
  friend constexpr bool operator==(InvalidId, StrongId<Tag> id) { return !id.valid(); }
  template <typename Tag>
  friend constexpr bool operator!=(StrongId<Tag> id, InvalidId) { return id.valid(); }
  template <typename Tag>
  friend constexpr bool operator!=(InvalidId, StrongId<Tag> id) { return id.valid(); }
};

inline constexpr InvalidId kInvalidId{};

/// Half-open dense id range [first, last) iterable by value:
///   for (CellId c : IdRange<CellId>(nl.cell_count())) ...
template <typename Id>
class IdRange {
  static_assert(is_strong_id_v<Id>, "IdRange requires a StrongId type");

 public:
  class iterator {
   public:
    explicit constexpr iterator(Id at) : at_(at) {}
    constexpr Id operator*() const { return at_; }
    constexpr iterator& operator++() {
      ++at_;
      return *this;
    }
    friend constexpr bool operator==(iterator a, iterator b) { return a.at_ == b.at_; }
    friend constexpr bool operator!=(iterator a, iterator b) { return a.at_ != b.at_; }

   private:
    Id at_;
  };

  /// [0, count).
  explicit constexpr IdRange(std::size_t count) : first_(0), last_(count) {}
  constexpr IdRange(Id first, Id last) : first_(first), last_(last) {}

  constexpr iterator begin() const { return iterator(first_); }
  constexpr iterator end() const { return iterator(last_); }
  constexpr std::size_t size() const {
    return static_cast<std::size_t>(last_.value() - first_.value());
  }
  constexpr bool empty() const { return !(first_ < last_); }

 private:
  Id first_;
  Id last_;
};

/// std::vector subscriptable only by its own id type. The deliberate gap in
/// the API is any integer-taking subscript: `v[i]` for integral `i` (or an id
/// of another domain) does not compile.
template <typename Id, typename T>
class IdVector {
  static_assert(is_strong_id_v<Id>, "IdVector requires a StrongId key type");

 public:
  using value_type = T;
  using id_type = Id;
  using iterator = typename std::vector<T>::iterator;
  using const_iterator = typename std::vector<T>::const_iterator;

  IdVector() = default;
  explicit IdVector(std::size_t count) : data_(count) {}
  IdVector(std::size_t count, const T& fill) : data_(count, fill) {}
  explicit IdVector(std::vector<T> data) : data_(std::move(data)) {}

  T& operator[](Id id) { return data_[id.index()]; }
  const T& operator[](Id id) const { return data_[id.index()]; }
  T& at(Id id) { return data_.at(id.index()); }
  const T& at(Id id) const { return data_.at(id.index()); }

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  void clear() { data_.clear(); }
  void pop_back() { data_.pop_back(); }
  void reserve(std::size_t n) { data_.reserve(n); }
  void resize(std::size_t n) { data_.resize(n); }
  void resize(std::size_t n, const T& fill) { data_.resize(n, fill); }
  void assign(std::size_t n, const T& fill) { data_.assign(n, fill); }

  /// Appends and returns the id of the new element.
  Id push_back(T value) {
    data_.push_back(std::move(value));
    return Id(data_.size() - 1);
  }
  template <typename... Args>
  Id emplace_back(Args&&... args) {
    data_.emplace_back(std::forward<Args>(args)...);
    return Id(data_.size() - 1);
  }

  T& front() { return data_.front(); }
  const T& front() const { return data_.front(); }
  T& back() { return data_.back(); }
  const T& back() const { return data_.back(); }
  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  iterator begin() { return data_.begin(); }
  iterator end() { return data_.end(); }
  const_iterator begin() const { return data_.begin(); }
  const_iterator end() const { return data_.end(); }

  /// The id of the next element push_back would create.
  Id next_id() const { return Id(data_.size()); }
  /// Dense id range [0, size()).
  IdRange<Id> ids() const { return IdRange<Id>(data_.size()); }
  /// True if `id` subscripts an element.
  bool contains(Id id) const { return id.valid() && id.index() < data_.size(); }

  /// The raw vector, for bulk operations (sorting, hashing, serialization)
  /// that never subscript by foreign index.
  std::vector<T>& raw() { return data_; }
  const std::vector<T>& raw() const { return data_; }

  friend bool operator==(const IdVector& a, const IdVector& b) { return a.data_ == b.data_; }

 private:
  std::vector<T> data_;
};

/// Non-owning view over contiguous T subscriptable only by Id; the typed
/// analogue of span/pointer+size parameters on hot paths.
template <typename Id, typename T>
class IdSpan {
  static_assert(is_strong_id_v<Id>, "IdSpan requires a StrongId key type");

 public:
  constexpr IdSpan() = default;
  constexpr IdSpan(T* data, std::size_t size) : data_(data), size_(size) {}
  template <typename U, std::enable_if_t<std::is_same_v<std::remove_const_t<T>, U>, int> = 0>
  IdSpan(const IdVector<Id, U>& v) : data_(v.data()), size_(v.size()) {}  // NOLINT
  template <typename U, std::enable_if_t<std::is_same_v<T, U>, int> = 0>
  IdSpan(IdVector<Id, U>& v) : data_(v.data()), size_(v.size()) {}  // NOLINT

  /// Views a raw vector the caller asserts is indexed by Id (the escape
  /// hatch for arrays shared with id-agnostic numeric kernels).
  static IdSpan from_raw(std::vector<std::remove_const_t<T>>& v) {
    return IdSpan(v.data(), v.size());
  }
  static IdSpan from_raw(const std::vector<std::remove_const_t<T>>& v) {
    static_assert(std::is_const_v<T>, "from_raw(const&) requires IdSpan<Id, const T>");
    return IdSpan(v.data(), v.size());
  }

  constexpr T& operator[](Id id) const { return data_[id.index()]; }
  constexpr std::size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr T* data() const { return data_; }
  constexpr T* begin() const { return data_; }
  constexpr T* end() const { return data_ + size_; }
  IdRange<Id> ids() const { return IdRange<Id>(size_); }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace ppacd::util

namespace std {
template <typename Tag>
struct hash<ppacd::util::StrongId<Tag>> {
  std::size_t operator()(ppacd::util::StrongId<Tag> id) const noexcept {
    return std::hash<std::int32_t>{}(id.value());
  }
};
}  // namespace std
