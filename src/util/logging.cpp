// lint:allow-file(raw-thread): log level/timestamp flags are process-wide infra state
#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace ppacd::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<bool> g_timestamps{false};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kSilent: return "SILENT";
  }
  return "?";
}

/// Seconds since the first log call (monotonic).
double uptime_seconds() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch)
      .count();
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_timestamps(bool enabled) {
  g_timestamps.store(enabled, std::memory_order_relaxed);
}

bool log_timestamps() { return g_timestamps.load(std::memory_order_relaxed); }

void log_line(LogLevel level, std::string_view tag, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(log_level())) return;
  // Format the whole line into one buffer and emit it with a single write so
  // concurrent log statements cannot interleave mid-line.
  std::string line;
  line.reserve(tag.size() + message.size() + 32);
  if (log_timestamps()) {
    char stamp[32];
    std::snprintf(stamp, sizeof(stamp), "[%9.3f] ", uptime_seconds());
    line += stamp;
  }
  line += '[';
  line += level_name(level);
  line += "] ";
  line.append(tag.data(), tag.size());
  line += ": ";
  line.append(message.data(), message.size());
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace ppacd::util
