#include "util/logging.hpp"

#include <cstdio>

namespace ppacd::util {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kSilent: return "SILENT";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }

LogLevel log_level() { return g_level; }

void log_line(LogLevel level, std::string_view tag, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
               static_cast<int>(tag.size()), tag.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace ppacd::util
