/// \file timer.hpp
/// \brief Wall-clock timer for the runtime columns of Table 2.
#pragma once

#include <chrono>

namespace ppacd::util {

/// Simple wall-clock stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace ppacd::util
