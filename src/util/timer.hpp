/// \file timer.hpp
/// \brief Wall-clock timers for the runtime columns of Table 2 and the
/// telemetry phase timings.
#pragma once

#include <chrono>

namespace ppacd::util {

/// Simple wall-clock stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double milliseconds() const { return seconds() * 1e3; }

  /// Elapsed microseconds.
  double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates the scope's wall time into `out_seconds` on destruction
/// (`+=`, so one accumulator can span several timed scopes). Replaces the
/// hand-rolled Timer/reset()/seconds() bookkeeping at phase boundaries:
///
///   {
///     ScopedTimer timer(outcome.clustering_seconds);
///     ... clustering ...
///   }
class ScopedTimer {
 public:
  explicit ScopedTimer(double& out_seconds) : out_(out_seconds) {}
  ~ScopedTimer() { out_ += timer_.seconds(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double& out_;
  Timer timer_;
};

}  // namespace ppacd::util
