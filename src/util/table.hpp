/// \file table.hpp
/// \brief ASCII table rendering used by every bench binary to print the
/// paper-style rows (Tables 1-6, Figure 5 series).
#pragma once

#include <string>
#include <vector>

namespace ppacd::util {

/// Column-aligned ASCII table with a title, a header row and data rows.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row; defines the column count.
  void set_header(std::vector<std::string> header) { header_ = std::move(header); }

  /// Appends one data row. Rows shorter than the header are right-padded.
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Renders the table with box-drawing separators.
  std::string to_string() const;

  /// Renders to stdout.
  void print() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ppacd::util
