/// \file csv.hpp
/// \brief CSV writer for exporting bench results alongside the ASCII tables.
#pragma once

#include <string>
#include <vector>

namespace ppacd::util {

/// Accumulates rows and writes a CSV file (RFC-4180-style quoting for cells
/// containing commas or quotes).
class CsvWriter {
 public:
  /// Sets the header row; defines the expected column count.
  void set_header(std::vector<std::string> header) { header_ = std::move(header); }

  /// Appends one data row.
  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  /// Serializes header + rows.
  std::string to_string() const;

  /// Writes to `path`; returns false on I/O failure.
  bool write(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ppacd::util
