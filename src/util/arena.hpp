/// \file arena.hpp
/// \brief Bump allocator for per-iteration numeric scratch (CG vectors,
/// density grids, router path buffers).
///
/// `alloc<T>(n)` hands out a `std::span<T>` carved from a chain of large
/// blocks; `reset()` rewinds the whole arena in O(1). After a reset that
/// needed more than one block, the chain is coalesced into a single block of
/// the combined size, so steady-state use settles into zero heap traffic:
/// every iteration allocates the same spans from the same block. Peak usage
/// and reuse statistics back the alloc.arena.* telemetry gauges emitted by
/// the owning kernels.
///
/// Restricted to trivially-destructible T (the arena never runs
/// destructors); spans come back zero-initialized so callers can accumulate
/// into them directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace ppacd::util {

class Arena {
 public:
  explicit Arena(std::size_t initial_bytes = 0) {
    if (initial_bytes > 0) add_block(initial_bytes);
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// A zeroed span of `count` T. Alignment is handled per allocation.
  template <typename T>
  std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    if (count == 0) return {};
    void* p = alloc_bytes(count * sizeof(T), alignof(T));
    std::memset(p, 0, count * sizeof(T));
    return {static_cast<T*>(p), count};
  }

  /// Rewinds to empty in O(1). If the previous cycle spilled past the first
  /// block, the chain is replaced by one block sized for the whole cycle, so
  /// the next cycle runs out of a single allocation.
  void reset() {
    if (blocks_.size() > 1) {
      std::size_t total = 0;
      for (const Block& b : blocks_) total += b.size;
      blocks_.clear();
      add_block(total);
    } else {
      ++reuse_count_;
    }
    if (!blocks_.empty()) blocks_.front().used = 0;
    live_ = 0;
  }

  /// High-water mark of live bytes over the arena's lifetime.
  std::size_t bytes_peak() const { return bytes_peak_; }
  /// Resets that recycled the existing block without any heap traffic.
  std::uint64_t reuse_count() const { return reuse_count_; }
  /// Total bytes currently reserved across blocks.
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  void add_block(std::size_t bytes) {
    Block b;
    b.size = bytes < kMinBlock ? kMinBlock : bytes;
    b.data = std::make_unique<std::byte[]>(b.size);
    blocks_.push_back(std::move(b));
  }

  void* alloc_bytes(std::size_t bytes, std::size_t align) {
    if (blocks_.empty()) add_block(bytes);
    Block* b = &blocks_.back();
    std::size_t offset = (b->used + align - 1) / align * align;
    if (offset + bytes > b->size) {
      // Grow geometrically so long cycles converge to few blocks fast.
      add_block(bytes > b->size ? 2 * bytes : 2 * b->size);
      b = &blocks_.back();
      offset = 0;
    }
    b->used = offset + bytes;
    live_ += bytes;
    if (live_ > bytes_peak_) bytes_peak_ = live_;
    // new[] storage is aligned for every fundamental type; `offset` keeps the
    // requested alignment within the block.
    return b->data.get() + offset;
  }

  static constexpr std::size_t kMinBlock = 4096;

  std::vector<Block> blocks_;
  std::size_t live_ = 0;
  std::size_t bytes_peak_ = 0;
  std::uint64_t reuse_count_ = 0;
};

}  // namespace ppacd::util
