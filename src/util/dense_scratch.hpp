/// \file dense_scratch.hpp
/// \brief Epoch-stamped dense scratch table: an O(1)-reset replacement for
/// the per-vertex `unordered_map<int32_t, V>` rating/gain tables on the
/// clustering hot paths.
///
/// Keys are small non-negative integers (vertex/community/cluster ids), so a
/// dense array indexed by key beats hashing by an order of magnitude. Instead
/// of zeroing the whole array between uses, every slot carries the epoch it
/// was last written in: `clear()` just bumps the epoch, making stale slots
/// invisible. The keys touched in the current epoch are recorded in
/// first-touch order, which gives deterministic iteration independent of any
/// hash function or stdlib version — the property the repo's bit-identity
/// tests pin.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ppacd::util {

template <typename V>
class DenseScratch {
 public:
  DenseScratch() = default;
  explicit DenseScratch(std::size_t capacity) { grow(capacity); }

  /// Ensures keys in [0, capacity) are addressable. Growing never disturbs
  /// the current epoch's contents.
  void grow(std::size_t capacity) {
    if (capacity > value_.size()) {
      value_.resize(capacity);
      stamp_.resize(capacity, 0);
    }
  }

  std::size_t capacity() const { return value_.size(); }

  /// Forgets every entry in O(1) (plus clearing the touched-key list).
  void clear() {
    touched_.clear();
    ++resets_;
    if (++epoch_ == 0) {  // uint32 wrap: old stamps become ambiguous
      std::fill(stamp_.begin(), stamp_.end(), std::uint32_t{0});
      epoch_ = 1;
    }
  }

  bool contains(std::int32_t key) const {
    assert(key >= 0 && static_cast<std::size_t>(key) < stamp_.size());
    return stamp_[static_cast<std::size_t>(key)] == epoch_;
  }

  /// Value for `key`, or `fallback` if untouched this epoch.
  V get(std::int32_t key, V fallback = V{}) const {
    return contains(key) ? value_[static_cast<std::size_t>(key)] : fallback;
  }

  /// Reference to the slot for `key`, inserting a default-constructed value
  /// (and recording the key) on first touch in this epoch.
  V& ref(std::int32_t key) {
    assert(key >= 0 && static_cast<std::size_t>(key) < stamp_.size());
    const auto k = static_cast<std::size_t>(key);
    if (stamp_[k] != epoch_) {
      stamp_[k] = epoch_;
      value_[k] = V{};
      touched_.push_back(key);
    }
    return value_[k];
  }

  void add(std::int32_t key, V delta) { ref(key) += delta; }

  /// Marks `key` as seen this epoch; returns true if it was already seen.
  /// (The set-only use case: epoch-based deduplication.)
  bool test_and_set(std::int32_t key) {
    assert(key >= 0 && static_cast<std::size_t>(key) < stamp_.size());
    const auto k = static_cast<std::size_t>(key);
    if (stamp_[k] == epoch_) return true;
    stamp_[k] = epoch_;
    value_[k] = V{};
    touched_.push_back(key);
    return false;
  }

  /// Keys touched this epoch, in first-touch order.
  std::span<const std::int32_t> keys() const { return touched_; }
  std::size_t size() const { return touched_.size(); }

  /// Number of `clear()` calls over the table's lifetime; feeds the
  /// scratch.epoch.resets telemetry counter at the call sites.
  std::uint64_t resets() const { return resets_; }

 private:
  std::vector<V> value_;
  // 32-bit stamps halve the lookup-path cache traffic (the maze router reads
  // a stamp per relaxed edge); clear() handles the wrap by re-zeroing.
  std::vector<std::uint32_t> stamp_;
  std::vector<std::int32_t> touched_;
  std::uint32_t epoch_ = 1;  ///< stamps start at 0 == "never touched"
  std::uint64_t resets_ = 0;
};

}  // namespace ppacd::util
