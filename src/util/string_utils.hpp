/// \file string_utils.hpp
/// \brief Small string helpers (hierarchical-name handling, formatting).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ppacd::util {

/// Splits `text` on `sep`, keeping empty tokens.
std::vector<std::string> split(std::string_view text, char sep);

/// Joins `tokens` with `sep`.
std::string join(const std::vector<std::string>& tokens, char sep);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// printf-style double formatting, e.g. format_double(1.23456, 3) == "1.235".
std::string format_double(double value, int decimals);

}  // namespace ppacd::util
