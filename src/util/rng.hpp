/// \file rng.hpp
/// \brief Deterministic random-number generation.
///
/// All stochastic algorithms in the library (benchmark generation, FC vertex
/// visit order, ML weight init, dataset perturbation) draw from an explicit
/// `Rng` so that every table in EXPERIMENTS.md is exactly reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace ppacd::util {

/// Deterministic 64-bit RNG. A thin wrapper over std::mt19937_64 with the
/// convenience draws the library needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform std::size_t in [0, n-1]. Requires n > 0.
  std::size_t index(std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Normal draw with the given mean and stddev.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool chance(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Geometric-ish heavy-tail draw used for net fanout distributions:
  /// returns >= 1, P(k) ~ (1-p)^k.
  int geometric1(double p) {
    return 1 + std::geometric_distribution<int>(p)(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::swap(values[i - 1], values[index(i)]);
    }
  }

  /// Returns a random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n) {
    std::vector<std::size_t> perm(n);
    for (std::size_t i = 0; i < n; ++i) perm[i] = i;
    shuffle(perm);
    return perm;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ppacd::util
