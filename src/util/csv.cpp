#include "util/csv.hpp"

#include <fstream>
#include <sstream>

namespace ppacd::util {

namespace {
std::string escape_cell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += "\"\"";
    else out.push_back(ch);
  }
  out.push_back('"');
  return out;
}

void render_row(std::ostringstream& out, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out << ",";
    out << escape_cell(row[i]);
  }
  out << "\n";
}
}  // namespace

std::string CsvWriter::to_string() const {
  std::ostringstream out;
  render_row(out, header_);
  for (const auto& row : rows_) render_row(out, row);
  return out.str();
}

bool CsvWriter::write(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  file << to_string();
  return static_cast<bool>(file);
}

}  // namespace ppacd::util
