#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ppacd::util {

Summary summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.min = values.front();
  s.max = values.front();
  double sum = 0.0;
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  double ss = 0.0;
  for (double v : values) ss += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(ss / static_cast<double>(values.size()));
  return s;
}

double mean(const std::vector<double>& values) { return summarize(values).mean; }

double stddev(const std::vector<double>& values) {
  return summarize(values).stddev;
}

double quantile(std::vector<double> values, double q) {
  assert(!values.empty());
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean_absolute_error(const std::vector<double>& predicted,
                           const std::vector<double>& actual) {
  assert(predicted.size() == actual.size());
  if (predicted.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    sum += std::fabs(predicted[i] - actual[i]);
  }
  return sum / static_cast<double>(predicted.size());
}

double r2_score(const std::vector<double>& predicted,
                const std::vector<double>& actual) {
  assert(predicted.size() == actual.size());
  if (actual.empty()) return 0.0;
  const double label_mean = mean(actual);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    ss_res += (actual[i] - predicted[i]) * (actual[i] - predicted[i]);
    ss_tot += (actual[i] - label_mean) * (actual[i] - label_mean);
  }
  if (ss_tot == 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

double percent_improvement(double base, double ours) {
  if (base == 0.0) return 0.0;
  return 100.0 * (base - ours) / std::fabs(base);
}

}  // namespace ppacd::util
