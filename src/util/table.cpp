#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ppacd::util {

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream line;
    line << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line << " " << cell << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    return line.str();
  };

  std::size_t total = 1;
  for (std::size_t w : widths) total += w + 3;
  const std::string rule(total, '-');

  std::ostringstream out;
  out << "\n== " << title_ << " ==\n";
  out << rule << "\n" << render_row(header_) << "\n" << rule << "\n";
  for (const auto& row : rows_) out << render_row(row) << "\n";
  out << rule << "\n";
  return out.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace ppacd::util
