/// \file soa.hpp
/// \brief Structure-of-arrays block storage for the solver hot loops.
///
/// The hot kernels (placer density accumulation, B2B assembly, Steiner
/// point refinement, ml feature stacking) used to walk arrays of structs —
/// every pass over one field dragged the whole struct through the cache.
/// SoaBlock keeps N parallel columns of the same row count in ONE
/// allocation, each column padded out to a cache-line multiple, so:
///   * a column scan streams contiguous memory at full bandwidth,
///   * resizing N columns costs one allocation instead of N,
///   * col(c) hands back a raw pointer the compiler can treat as
///     non-aliased across distinct columns (distinct sub-ranges of one
///     buffer, never overlapping).
///
/// Row order is whatever the filler wrote — these are dumb buffers; the
/// determinism argument lives with the loops that fill and consume them
/// (DESIGN.md §15).
#pragma once

#include <cstddef>
#include <vector>

namespace ppacd::util {

/// N parallel columns of T with a shared row count, in one buffer.
template <typename T, std::size_t Cols>
class SoaBlock {
  static_assert(Cols >= 1);

 public:
  /// Rows per column after padding; 64 bytes keeps every column start
  /// cache-line aligned relative to the buffer base.
  static constexpr std::size_t kPadRows =
      64 / sizeof(T) > 0 ? 64 / sizeof(T) : 1;

  void resize(std::size_t rows) {
    rows_ = rows;
    stride_ = ((rows + kPadRows - 1) / kPadRows) * kPadRows;
    if (storage_.size() < stride_ * Cols) storage_.resize(stride_ * Cols);
  }

  std::size_t rows() const { return rows_; }

  T* col(std::size_t c) { return storage_.data() + c * stride_; }
  const T* col(std::size_t c) const { return storage_.data() + c * stride_; }

 private:
  std::vector<T> storage_;
  std::size_t rows_ = 0;
  std::size_t stride_ = 0;
};

}  // namespace ppacd::util
