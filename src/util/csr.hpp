/// \file csr.hpp
/// \brief Flat compressed-sparse-row container: one offsets array plus one
/// contiguous payload array, replacing vector-of-vectors on hot paths.
///
/// A `Csr<T>` row is a `std::span<T>` into the payload, so iteration touches
/// one cache-friendly allocation instead of chasing a pointer per row. Two
/// build modes cover every producer in the tree:
///
///  - **Counting build** (`start_rows` / `add_to_row` / `commit_rows` /
///    `push`): classic two-pass fill when row sizes are known from a prior
///    scan. `push` preserves call order within each row, so a conversion from
///    per-row `push_back` is bit-identical.
///  - **Append build** (`start_append` / `append` / `end_row` /
///    `append_row`): rows emitted sequentially when sizes are discovered on
///    the fly (e.g. deduplicated hyperedges during coarsening).
///
/// All internal buffers keep their capacity across rebuilds: reusing one Csr
/// per level/iteration allocates nothing in steady state.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace ppacd::util {

template <typename T>
class Csr {
 public:
  Csr() = default;

  std::size_t rows() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  std::size_t value_count() const { return values_.size(); }
  bool empty() const { return rows() == 0; }

  std::span<const T> row(std::size_t r) const {
    assert(r + 1 < offsets_.size());
    return {values_.data() + offsets_[r], offsets_[r + 1] - offsets_[r]};
  }
  std::span<T> row(std::size_t r) {
    assert(r + 1 < offsets_.size());
    return {values_.data() + offsets_[r], offsets_[r + 1] - offsets_[r]};
  }
  std::size_t row_size(std::size_t r) const {
    assert(r + 1 < offsets_.size());
    return offsets_[r + 1] - offsets_[r];
  }

  std::span<const T> values() const { return values_; }
  std::span<T> values() { return values_; }
  const std::vector<std::size_t>& offsets() const { return offsets_; }

  /// Drops all rows and values; capacity is retained for reuse.
  void clear() {
    offsets_.clear();
    cursor_.clear();
    values_.clear();
  }

  // --- Counting build --------------------------------------------------------

  /// Starts a counting build with `row_count` empty rows.
  void start_rows(std::size_t row_count) {
    offsets_.assign(row_count + 1, 0);
    cursor_.clear();
    values_.clear();
  }

  /// Declares `n` more values for row `r` (counting pass).
  void add_to_row(std::size_t r, std::size_t n = 1) {
    assert(r + 1 < offsets_.size());
    offsets_[r + 1] += n;
  }

  /// Converts counts to offsets and sizes the payload; call once between the
  /// counting pass and the `push` pass.
  void commit_rows() {
    const std::size_t row_count = rows();
    for (std::size_t r = 0; r < row_count; ++r) {
      offsets_[r + 1] += offsets_[r];
    }
    values_.resize(offsets_[row_count]);
    cursor_.assign(offsets_.begin(), offsets_.end() - 1);
  }

  /// Appends `value` to row `r` (fill pass). Values land in push order, so a
  /// row reads back exactly like the vector-of-vectors it replaces.
  void push(std::size_t r, T value) {
    assert(r < cursor_.size() && cursor_[r] < offsets_[r + 1]);
    values_[cursor_[r]++] = value;
  }

  // --- Append build ----------------------------------------------------------

  /// Starts an append build (rows are emitted in order, sizes unknown).
  void start_append(std::size_t expected_rows = 0,
                    std::size_t expected_values = 0) {
    offsets_.clear();
    offsets_.reserve(expected_rows + 1);
    offsets_.push_back(0);
    cursor_.clear();
    values_.clear();
    values_.reserve(expected_values);
  }

  /// Adds `value` to the row currently being appended.
  void append(T value) { values_.push_back(value); }

  /// Closes the current row; the next `append` starts a new one.
  void end_row() { offsets_.push_back(values_.size()); }

  /// Appends one whole row.
  void append_row(std::span<const T> values) {
    values_.insert(values_.end(), values.begin(), values.end());
    end_row();
  }

 private:
  std::vector<std::size_t> offsets_;  ///< rows()+1 entries; [r, r+1) bounds
  std::vector<std::size_t> cursor_;   ///< per-row fill positions (push pass)
  std::vector<T> values_;
};

}  // namespace ppacd::util
