#include "util/string_utils.hpp"

#include <cstdio>

namespace ppacd::util {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      tokens.emplace_back(text.substr(start));
      return tokens;
    }
    tokens.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& tokens, char sep) {
  std::string out;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out.push_back(sep);
    out += tokens[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string format_double(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

}  // namespace ppacd::util
