/// \file simd.hpp
/// \brief Fixed-lane vector kernels for the solver hot loops (CG axpy/dot,
/// preconditioning, elementwise merges), with bit-identical scalar and SSE2
/// paths.
///
/// Determinism contract (DESIGN.md §15): every kernel here is defined by a
/// FIXED operation order that both implementations execute exactly.
///   * Elementwise kernels (axpy, xpby, precondition, add) perform one
///     independent op per element; packing them into vector lanes cannot
///     change any result bit.
///   * Reductions (dot) accumulate into kLanes == 4 independent lane sums —
///     lane l sums elements l, l+4, l+8, ... — combined as
///     (l0 + l1) + (l2 + l3), then the scalar tail folds in ascending index
///     order. The SSE2 path keeps two 2-wide lane pairs and performs the
///     same per-lane additions in the same order, so the result is
///     bit-identical to the scalar reference for every input.
///
/// The scalar reference implementations (`*_scalar`) are ALWAYS compiled,
/// regardless of the PPACD_SIMD CMake option, so tests can cross-check the
/// dispatched kernels against them in a single binary
/// (tests/determinism_test.cpp, "SimdKernels*"). The top-level build adds
/// -ffp-contract=off so neither path silently fuses multiply-add on
/// FMA-capable -march builds, which would break the equivalence.
///
/// No kernel here may introduce an unordered float accumulation: new
/// reductions must follow the fixed-lane pattern above
/// (tools/lint_determinism.py rule `simd-float-accum` flags violations).
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(PPACD_SIMD) && defined(__SSE2__)
#define PPACD_SIMD_SSE2 1
#include <emmintrin.h>
#endif

/// Non-aliasing qualifier for hot-loop raw pointers (SoA columns, CSR
/// arrays). Purely an optimization hint; results are unchanged.
#if defined(__GNUC__) || defined(__clang__)
#define PPACD_RESTRICT __restrict__
#else
#define PPACD_RESTRICT
#endif

namespace ppacd::util::simd {

/// Accumulator lanes used by every reduction kernel. Part of the numeric
/// contract: changing it changes reduction bit patterns (a golden re-pin).
inline constexpr std::size_t kLanes = 4;

/// True when the dispatched kernels use SSE2 intrinsics (PPACD_SIMD build on
/// an SSE2 target); false when they alias the scalar reference path.
inline constexpr bool enabled() {
#if defined(PPACD_SIMD_SSE2)
  return true;
#else
  return false;
#endif
}

// ---------------------------------------------------------------------------
// Scalar reference path (always compiled; the numeric ground truth).
// ---------------------------------------------------------------------------

/// sum(a[i] * b[i]) in fixed 4-lane order; see file comment.
inline double dot_scalar(const double* a, const double* b, std::size_t n) {
  double l0 = 0.0;
  double l1 = 0.0;
  double l2 = 0.0;
  double l3 = 0.0;
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    l0 += a[i] * b[i];
    l1 += a[i + 1] * b[i + 1];
    l2 += a[i + 2] * b[i + 2];
    l3 += a[i + 3] * b[i + 3];
  }
  double sum = (l0 + l1) + (l2 + l3);
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

/// x[i] += alpha * p[i].
inline void axpy_scalar(double* x, double alpha, const double* p,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) x[i] += alpha * p[i];
}

/// The fused CG update: x[i] += alpha * p[i]; r[i] -= alpha * ap[i].
inline void cg_update_scalar(double* x, double* r, const double* p,
                             const double* ap, double alpha, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    x[i] += alpha * p[i];
    r[i] -= alpha * ap[i];
  }
}

/// p[i] = z[i] + beta * p[i] (CG direction update).
inline void xpby_scalar(double* p, const double* z, double beta,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
}

/// out[i] = diag[i] > 0 ? in[i] / diag[i] : in[i] (Jacobi preconditioner).
inline void jacobi_scalar(double* out, const double* in, const double* diag,
                          std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    const double d = diag[i];
    out[i] = d > 0.0 ? in[i] / d : in[i];
  }
}

/// dst[i] += src[i] (ordered partial-grid merges).
inline void add_scalar(double* dst, const double* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

/// One CSR mat-vec row: d - sum(w[e] * x[c[e]]), accumulated in four fixed
/// lanes (entry e folds into lane e % 4; the diagonal term seeds lane 0),
/// combined as (a0 + a1) + (a2 + a3), scalar tail last. The lane split
/// breaks the per-entry dependency chain so the gathers overlap.
inline double csr_row_scalar(double d, const double* w, const std::int32_t* c,
                             const double* x, std::size_t len) {
  double a0 = d;
  double a1 = 0.0;
  double a2 = 0.0;
  double a3 = 0.0;
  std::size_t e = 0;
  for (; e + kLanes <= len; e += kLanes) {
    a0 -= w[e] * x[static_cast<std::size_t>(c[e])];
    a1 -= w[e + 1] * x[static_cast<std::size_t>(c[e + 1])];
    a2 -= w[e + 2] * x[static_cast<std::size_t>(c[e + 2])];
    a3 -= w[e + 3] * x[static_cast<std::size_t>(c[e + 3])];
  }
  double acc = (a0 + a1) + (a2 + a3);
  for (; e < len; ++e) acc -= w[e] * x[static_cast<std::size_t>(c[e])];
  return acc;
}

// ---------------------------------------------------------------------------
// Dispatched kernels: SSE2 when PPACD_SIMD is on, scalar reference otherwise.
// ---------------------------------------------------------------------------

#if defined(PPACD_SIMD_SSE2)

inline double dot(const double* a, const double* b, std::size_t n) {
  // acc01 carries lanes {0, 1}, acc23 lanes {2, 3}; each vector add performs
  // the same two independent lane additions the scalar reference does.
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(_mm_loadu_pd(a + i),
                                         _mm_loadu_pd(b + i)));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(_mm_loadu_pd(a + i + 2),
                                         _mm_loadu_pd(b + i + 2)));
  }
  // (l0 + l1) + (l2 + l3), exactly as the scalar combine.
  const __m128d s01 = _mm_add_sd(acc01, _mm_unpackhi_pd(acc01, acc01));
  const __m128d s23 = _mm_add_sd(acc23, _mm_unpackhi_pd(acc23, acc23));
  double sum = _mm_cvtsd_f64(_mm_add_sd(s01, s23));
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

inline void axpy(double* x, double alpha, const double* p, std::size_t n) {
  const __m128d va = _mm_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(x + i, _mm_add_pd(_mm_loadu_pd(x + i),
                                    _mm_mul_pd(va, _mm_loadu_pd(p + i))));
  }
  for (; i < n; ++i) x[i] += alpha * p[i];
}

inline void cg_update(double* x, double* r, const double* p, const double* ap,
                      double alpha, std::size_t n) {
  const __m128d va = _mm_set1_pd(alpha);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(x + i, _mm_add_pd(_mm_loadu_pd(x + i),
                                    _mm_mul_pd(va, _mm_loadu_pd(p + i))));
    _mm_storeu_pd(r + i, _mm_sub_pd(_mm_loadu_pd(r + i),
                                    _mm_mul_pd(va, _mm_loadu_pd(ap + i))));
  }
  for (; i < n; ++i) {
    x[i] += alpha * p[i];
    r[i] -= alpha * ap[i];
  }
}

inline void xpby(double* p, const double* z, double beta, std::size_t n) {
  const __m128d vb = _mm_set1_pd(beta);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(p + i, _mm_add_pd(_mm_loadu_pd(z + i),
                                    _mm_mul_pd(vb, _mm_loadu_pd(p + i))));
  }
  for (; i < n; ++i) p[i] = z[i] + beta * p[i];
}

inline void jacobi(double* out, const double* in, const double* diag,
                   std::size_t n) {
  const __m128d zero = _mm_setzero_pd();
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d d = _mm_loadu_pd(diag + i);
    const __m128d v = _mm_loadu_pd(in + i);
    const __m128d q = _mm_div_pd(v, d);
    // Per-lane select: IEEE division is exact per lane, and lanes with
    // d <= 0 take the untouched input, matching the scalar branch.
    const __m128d use_div = _mm_cmpgt_pd(d, zero);
    _mm_storeu_pd(out + i, _mm_or_pd(_mm_and_pd(use_div, q),
                                     _mm_andnot_pd(use_div, v)));
  }
  for (; i < n; ++i) {
    const double d = diag[i];
    out[i] = d > 0.0 ? in[i] / d : in[i];
  }
}

inline void add(double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(dst + i,
                  _mm_add_pd(_mm_loadu_pd(dst + i), _mm_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

inline double csr_row(double d, const double* w, const std::int32_t* c,
                      const double* x, std::size_t len) {
  // acc01 lanes {0, 1} (lane 0 seeded with d), acc23 lanes {2, 3} — the
  // same four accumulators as the scalar reference; the gathers themselves
  // have no vector form in SSE2.
  __m128d acc01 = _mm_set_pd(0.0, d);
  __m128d acc23 = _mm_setzero_pd();
  std::size_t e = 0;
  for (; e + kLanes <= len; e += kLanes) {
    const __m128d x01 = _mm_set_pd(x[static_cast<std::size_t>(c[e + 1])],
                                   x[static_cast<std::size_t>(c[e])]);
    const __m128d x23 = _mm_set_pd(x[static_cast<std::size_t>(c[e + 3])],
                                   x[static_cast<std::size_t>(c[e + 2])]);
    acc01 = _mm_sub_pd(acc01, _mm_mul_pd(_mm_loadu_pd(w + e), x01));
    acc23 = _mm_sub_pd(acc23, _mm_mul_pd(_mm_loadu_pd(w + e + 2), x23));
  }
  const __m128d s01 = _mm_add_sd(acc01, _mm_unpackhi_pd(acc01, acc01));
  const __m128d s23 = _mm_add_sd(acc23, _mm_unpackhi_pd(acc23, acc23));
  double sum = _mm_cvtsd_f64(_mm_add_sd(s01, s23));
  for (; e < len; ++e) sum -= w[e] * x[static_cast<std::size_t>(c[e])];
  return sum;
}

#else  // scalar dispatch (PPACD_SIMD=OFF or no SSE2 target)

inline double dot(const double* a, const double* b, std::size_t n) {
  return dot_scalar(a, b, n);
}
inline void axpy(double* x, double alpha, const double* p, std::size_t n) {
  axpy_scalar(x, alpha, p, n);
}
inline void cg_update(double* x, double* r, const double* p, const double* ap,
                      double alpha, std::size_t n) {
  cg_update_scalar(x, r, p, ap, alpha, n);
}
inline void xpby(double* p, const double* z, double beta, std::size_t n) {
  xpby_scalar(p, z, beta, n);
}
inline void jacobi(double* out, const double* in, const double* diag,
                   std::size_t n) {
  jacobi_scalar(out, in, diag, n);
}
inline void add(double* dst, const double* src, std::size_t n) {
  add_scalar(dst, src, n);
}
inline double csr_row(double d, const double* w, const std::int32_t* c,
                      const double* x, std::size_t len) {
  return csr_row_scalar(d, w, c, x, len);
}

#endif

}  // namespace ppacd::util::simd
