/// \file scale.hpp
/// \brief Paper-scale synthetic design tier (1M-5M instances).
///
/// The six Table-1 stand-ins (designs.hpp) are laptop-sized; the paper's
/// headline designs are millions of instances. This tier generates netlists
/// at that scale with a *controlled Rent exponent*: the requested exponent
/// `p` is mapped monotonically onto the generator's locality knobs
/// (local/sibling net fractions), so a larger `p` yields proportionally more
/// global wiring — the property sharded placement is sensitive to.
/// `hier::average_rent` over the generated hierarchy validates the ordering
/// (gen_test); the mapping is calibrated, not exact.
///
/// Three families cover the structure extremes:
///   * "generic"  — distance-decaying random hierarchy (default),
///   * "macro"    — macro-heavy: few large replicated blocks (multicore
///     topology, shallow tree, register-rich leaves),
///   * "datapath" — datapath-regular: pipeline topology, short logic
///     between dense register stages.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gen/generator.hpp"

namespace ppacd::gen {

/// One entry of the scaled tier: everything needed to regenerate the design
/// from the command line (flow_cli --list-designs prints these).
struct ScaledDesignInfo {
  std::string name;      ///< e.g. "scale-1m"
  std::string family;    ///< "generic" | "macro" | "datapath"
  int target_cells = 0;
  double rent_exponent = 0.65;
  std::uint64_t seed = 1;
};

/// The named scale tier: 100k smoke size, the 1M-5M paper ladder, and the
/// macro-heavy / datapath-regular 1M variants.
const std::vector<ScaledDesignInfo>& scaled_design_tier();

/// Builds the spec for one scaled design. `family` must be one of the three
/// family names above (aborts otherwise); `rent_exponent` is clamped to
/// [0.45, 0.85].
DesignSpec make_scaled_design(const std::string& family, int target_cells,
                              double rent_exponent, std::uint64_t seed);

/// Convenience over the tier entry.
DesignSpec make_scaled_design(const ScaledDesignInfo& info);

/// Tier lookup by name; nullptr when `name` is not a scaled design.
const ScaledDesignInfo* find_scaled_design(const std::string& name);

}  // namespace ppacd::gen
