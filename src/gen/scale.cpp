#include "gen/scale.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ppacd::gen {

namespace {

/// Leaves hold ~1000 cells each; depth follows from branching 4. Clamped so
/// the smoke sizes still exercise Algorithm 2's grouping (>= 3 levels).
int depth_for(int target_cells, int branching) {
  const double leaves = std::max(1.0, target_cells / 1000.0);
  const int depth =
      static_cast<int>(std::ceil(std::log(leaves) / std::log(double(branching))));
  return std::clamp(depth, 3, 7);
}

}  // namespace

DesignSpec make_scaled_design(const std::string& family, int target_cells,
                              double rent_exponent, std::uint64_t seed) {
  const double p = std::clamp(rent_exponent, 0.45, 0.85);
  DesignSpec spec;
  spec.seed = seed;
  spec.target_cells = target_cells;
  spec.clock_period_ps = 2000.0;
  spec.io_ports = 256;
  // Monotone Rent -> locality map: a higher exponent means more external
  // terminals per module, i.e. fewer nets resolved locally. Calibrated so
  // p = 0.65 lands near the Table-1 stand-ins' locality (~0.70 local).
  spec.local_net_fraction = std::clamp(1.25 - 0.85 * p, 0.25, 0.90);
  spec.sibling_net_fraction =
      std::clamp(0.5 * (1.0 - spec.local_net_fraction), 0.05, 0.30);
  spec.hierarchy_branching = 4;
  spec.hierarchy_depth = depth_for(target_cells, spec.hierarchy_branching);
  if (family == "generic") {
    spec.topology = Topology::kGeneric;
    spec.register_fraction = 0.25;
    spec.logic_depth = 12;
    spec.critical_unit_fraction = 0.15;
  } else if (family == "macro") {
    // Macro-heavy: replicated large blocks — one level shallower, so each
    // leaf is ~4x bigger (a macro-like unit), register-rich.
    spec.topology = Topology::kMulticore;
    spec.hierarchy_depth = std::max(3, spec.hierarchy_depth - 1);
    spec.register_fraction = 0.35;
    spec.logic_depth = 10;
    spec.critical_unit_fraction = 0.10;
  } else if (family == "datapath") {
    // Datapath-regular: pipeline of dense register stages, short cones.
    spec.topology = Topology::kPipeline;
    spec.register_fraction = 0.40;
    spec.logic_depth = 8;
    spec.critical_unit_fraction = 0.08;
  } else {
    assert(false && "unknown scaled-design family");
  }
  return spec;
}

DesignSpec make_scaled_design(const ScaledDesignInfo& info) {
  DesignSpec spec = make_scaled_design(info.family, info.target_cells,
                                       info.rent_exponent, info.seed);
  spec.name = info.name;
  return spec;
}

const std::vector<ScaledDesignInfo>& scaled_design_tier() {
  static const std::vector<ScaledDesignInfo> kTier = {
      {"scale-100k", "generic", 100'000, 0.65, 0x5ca1e100},
      {"scale-1m", "generic", 1'000'000, 0.65, 0x5ca1e001},
      {"scale-2m", "generic", 2'000'000, 0.70, 0x5ca1e002},
      {"scale-5m", "generic", 5'000'000, 0.75, 0x5ca1e005},
      {"scale-1m-macro", "macro", 1'000'000, 0.60, 0x5ca1e101},
      {"scale-1m-datapath", "datapath", 1'000'000, 0.55, 0x5ca1e201},
  };
  return kTier;
}

const ScaledDesignInfo* find_scaled_design(const std::string& name) {
  for (const ScaledDesignInfo& info : scaled_design_tier()) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

}  // namespace ppacd::gen
