/// \file designs.hpp
/// \brief The six paper testcases (Table 1) as synthetic design specs.
///
/// Scale policy (DESIGN.md §6): instance counts are reduced so every table
/// regenerates on a laptop, but the paper's size ladder (~30x smallest to
/// largest), hierarchy shapes and register fractions are preserved.
#pragma once

#include <string>
#include <vector>

#include "gen/generator.hpp"

namespace ppacd::gen {

/// Returns the spec for one of: "aes", "jpeg", "ariane", "BlackParrot",
/// "MegaBoom", "MemPool Group", or a scaled-tier name (scale.hpp, e.g.
/// "scale-1m"). Aborts on unknown names.
DesignSpec design_spec(const std::string& name);

/// All six designs in Table 1 order.
std::vector<DesignSpec> all_design_specs();

/// The four designs OpenROAD can route in the paper (Table 3 rows).
std::vector<DesignSpec> routable_design_specs();

/// The three small designs used for hyperparameter studies (Fig. 5, Table 5).
std::vector<DesignSpec> small_design_specs();

}  // namespace ppacd::gen
