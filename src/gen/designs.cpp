#include "gen/designs.hpp"

#include <cassert>

#include "gen/scale.hpp"

namespace ppacd::gen {

namespace {

DesignSpec aes_spec() {
  DesignSpec spec;
  spec.name = "aes";
  spec.seed = 0xae5;
  spec.target_cells = 1500;
  spec.hierarchy_depth = 2;
  spec.hierarchy_branching = 4;  // round units
  spec.topology = Topology::kGeneric;
  spec.register_fraction = 0.20;
  spec.logic_depth = 12;
  spec.local_net_fraction = 0.72;
  spec.sibling_net_fraction = 0.16;
  spec.io_ports = 48;
  spec.clock_period_ps = 1100.0;  // calibrated so WNS/TCP matches the
  // paper's violation regime (Table 1 lists 0.55 ns for the real aes RTL)
  spec.critical_unit_fraction = 0.30;  // sbox/mixcolumns-style deep cones
  return spec;
}

DesignSpec jpeg_spec() {
  DesignSpec spec;
  spec.name = "jpeg";
  spec.seed = 0x17e6;
  spec.target_cells = 3600;
  spec.hierarchy_depth = 3;
  spec.hierarchy_branching = 6;  // encoder pipeline stages
  spec.topology = Topology::kPipeline;
  spec.register_fraction = 0.28;
  spec.logic_depth = 11;
  spec.local_net_fraction = 0.74;
  spec.sibling_net_fraction = 0.14;
  spec.io_ports = 40;
  spec.clock_period_ps = 800.0;
  spec.critical_unit_fraction = 0.20;
  return spec;
}

DesignSpec ariane_spec() {
  DesignSpec spec;
  spec.name = "ariane";
  spec.seed = 0xa21a7e;
  spec.target_cells = 6500;
  spec.hierarchy_depth = 4;
  spec.hierarchy_branching = 3;  // frontend/ex/lsu/... style tree
  spec.topology = Topology::kGeneric;
  spec.register_fraction = 0.22;
  spec.logic_depth = 14;
  spec.local_net_fraction = 0.70;
  spec.sibling_net_fraction = 0.18;
  spec.io_ports = 64;
  spec.clock_period_ps = 1800.0;
  spec.critical_unit_fraction = 0.15;
  return spec;
}

DesignSpec blackparrot_spec() {
  DesignSpec spec;
  spec.name = "BlackParrot";
  spec.seed = 0xb9a5507;
  spec.target_cells = 12000;
  spec.hierarchy_depth = 4;
  spec.hierarchy_branching = 4;  // 4 cores + uncore
  spec.topology = Topology::kMulticore;
  spec.register_fraction = 0.25;
  spec.logic_depth = 13;
  spec.local_net_fraction = 0.76;
  spec.sibling_net_fraction = 0.14;
  spec.io_ports = 96;
  spec.clock_period_ps = 2300.0;
  spec.critical_unit_fraction = 0.12;
  return spec;
}

DesignSpec megaboom_spec() {
  DesignSpec spec;
  spec.name = "MegaBoom";
  spec.seed = 0x2e6ab004;
  spec.target_cells = 17000;
  spec.hierarchy_depth = 5;
  spec.hierarchy_branching = 3;  // deep OoO-core hierarchy
  spec.topology = Topology::kGeneric;
  spec.register_fraction = 0.24;
  spec.logic_depth = 16;
  spec.local_net_fraction = 0.70;
  spec.sibling_net_fraction = 0.18;
  spec.io_ports = 96;
  spec.clock_period_ps = 2800.0;  // Table 1: NA in OpenROAD; calibrated
  spec.critical_unit_fraction = 0.12;
  return spec;
}

DesignSpec mempool_group_spec() {
  DesignSpec spec;
  spec.name = "MemPool Group";
  spec.seed = 0x3e39001;
  spec.target_cells = 26000;
  spec.hierarchy_depth = 4;
  spec.hierarchy_branching = 4;  // 4x4 tile grid
  spec.topology = Topology::kTiled;
  spec.register_fraction = 0.28;
  spec.logic_depth = 10;
  spec.local_net_fraction = 0.80;
  spec.sibling_net_fraction = 0.12;
  spec.io_ports = 128;
  spec.clock_period_ps = 1600.0;  // Table 1: NA in OpenROAD; calibrated
  spec.critical_unit_fraction = 0.10;
  return spec;
}

}  // namespace

DesignSpec design_spec(const std::string& name) {
  if (name == "aes") return aes_spec();
  if (name == "jpeg") return jpeg_spec();
  if (name == "ariane") return ariane_spec();
  if (name == "BlackParrot") return blackparrot_spec();
  if (name == "MegaBoom") return megaboom_spec();
  if (name == "MemPool Group") return mempool_group_spec();
  if (const ScaledDesignInfo* scaled = find_scaled_design(name)) {
    return make_scaled_design(*scaled);
  }
  assert(false && "unknown design name");
  return DesignSpec{};
}

std::vector<DesignSpec> all_design_specs() {
  return {aes_spec(),        jpeg_spec(),     ariane_spec(),
          blackparrot_spec(), megaboom_spec(), mempool_group_spec()};
}

std::vector<DesignSpec> routable_design_specs() {
  return {aes_spec(), jpeg_spec(), ariane_spec(), blackparrot_spec()};
}

std::vector<DesignSpec> small_design_specs() {
  return {aes_spec(), jpeg_spec(), ariane_spec()};
}

}  // namespace ppacd::gen
