/// \file generator.hpp
/// \brief Synthetic hierarchical benchmark generator.
///
/// The paper evaluates on six open testcases (aes, jpeg, ariane, BlackParrot,
/// MegaBoom, MemPool Group) that are not available offline, so this module
/// generates deterministic stand-ins that preserve the properties the
/// algorithms are sensitive to:
///   * a logical hierarchy tree with design-specific depth/branching
///     (consumed by Algorithm 2),
///   * Rent's-rule-like locality: most nets stay inside a module, the rest
///     reach siblings and then the wider tree with decaying probability,
///   * acyclic combinational logic between register stages so STA produces
///     meaningful critical paths (timing cost t_e in Eq. 3),
///   * a single-source clock net over all flip-flops (buffered later by CTS),
///   * design "topologies": pipelines chain stages, tiled designs connect
///     grid neighbours, multicores replicate identical subtrees.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace ppacd::gen {

/// Macro-structure of the design, controls inter-module connectivity.
enum class Topology {
  kGeneric,    ///< hierarchy with distance-decaying random connectivity
  kPipeline,   ///< top-level children form a chain (stage i feeds stage i+1)
  kTiled,      ///< top-level children form a grid with neighbour links
  kMulticore,  ///< replicated core subtrees plus shared uncore modules
};

/// All knobs of one synthetic design.
struct DesignSpec {
  std::string name = "design";
  std::uint64_t seed = 1;
  int target_cells = 1000;          ///< approximate instance count
  int hierarchy_depth = 3;          ///< module-tree depth below the root
  int hierarchy_branching = 3;      ///< children per internal module
  Topology topology = Topology::kGeneric;
  double register_fraction = 0.25;  ///< DFF share of instances
  int logic_depth = 10;             ///< max combinational levels between regs
  double local_net_fraction = 0.75; ///< P(driver in same leaf module)
  double sibling_net_fraction = 0.15; ///< P(driver in sibling module)
  double fanout_p = 0.45;           ///< geometric fanout parameter (mean ~1/p)
  int io_ports = 32;                ///< data ports (plus one clock port)
  double clock_period_ps = 1000.0;  ///< target clock period (TCP)
  /// Fraction of leaf modules designated "critical units" whose logic is
  /// deeper, creating genuinely timing-critical regions.
  double critical_unit_fraction = 0.15;
};

/// Generates the netlist for `spec`. The result is validated; generation
/// aborts (assert) if the builder produced an inconsistent design.
netlist::Netlist generate(const liberty::Library& lib, const DesignSpec& spec);

}  // namespace ppacd::gen
