#include "gen/generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "util/logging.hpp"

namespace ppacd::gen {

namespace {

using netlist::CellId;
using netlist::ModuleId;
using netlist::NetId;
using netlist::Netlist;
using netlist::PinId;
using netlist::PortId;

/// Weighted sampler over the combinational portion of the library.
class GateMix {
 public:
  GateMix(const liberty::Library& lib, double arith_mix) {
    struct Entry { const char* name; double base; double arith; };
    // Base mix resembles a synthesized control+datapath netlist; `arith`
    // shifts mass toward XOR/adders for crypto/DSP-flavoured designs.
    const Entry entries[] = {
        {"INV_X1", 0.14, 0.10}, {"INV_X2", 0.03, 0.02}, {"BUF_X1", 0.05, 0.04},
        {"NAND2_X1", 0.18, 0.12}, {"NAND3_X1", 0.05, 0.03},
        {"NOR2_X1", 0.10, 0.07}, {"AND2_X1", 0.09, 0.07}, {"OR2_X1", 0.08, 0.06},
        {"XOR2_X1", 0.07, 0.22}, {"AOI21_X1", 0.08, 0.05},
        {"OAI21_X1", 0.06, 0.04}, {"MUX2_X1", 0.06, 0.06},
        {"HA_X1", 0.005, 0.06}, {"FA_X1", 0.005, 0.06},
    };
    for (const Entry& entry : entries) {
      const auto id = lib.find(entry.name);
      assert(id.has_value());
      ids_.push_back(*id);
      const double w = (1.0 - arith_mix) * entry.base + arith_mix * entry.arith;
      cumulative_.push_back((cumulative_.empty() ? 0.0 : cumulative_.back()) + w);
    }
  }

  liberty::LibCellId sample(util::Rng& rng) const {
    const double u = rng.uniform(0.0, cumulative_.back());
    const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
    return ids_[static_cast<std::size_t>(it - cumulative_.begin())];
  }

 private:
  std::vector<liberty::LibCellId> ids_;
  std::vector<double> cumulative_;
};

/// Everything the wiring phase needs to know about one leaf module.
struct LeafInfo {
  ModuleId module = netlist::kInvalidId;
  int top_child = -1;  ///< index of the root child this leaf lives under
  bool critical = false;
  /// Source (driver) pins bucketed by logic level; level 0 = DFF Q outputs.
  std::vector<std::vector<PinId>> sources_by_level;
  /// High-fanout "hub" sources (control-like signals).
  std::vector<PinId> hubs;
};

struct GenContext {
  const DesignSpec* spec = nullptr;
  Netlist* nl = nullptr;
  util::Rng rng;
  std::vector<LeafInfo> leaves;
  std::unordered_map<ModuleId, int> leaf_index;  ///< module -> leaves index
  std::vector<std::vector<int>> leaves_by_top_child;
  /// Global pool: all data input-port pins (level-0 sources).
  std::vector<PinId> input_port_pins;
  /// Lazily created net per driver pin.
  std::unordered_map<PinId, NetId> net_of_driver;
  int max_level = 0;

  explicit GenContext(std::uint64_t seed) : rng(seed) {}
};

/// Recursively builds the module tree; returns leaves under `parent`.
void build_tree(GenContext& ctx, ModuleId parent, int depth, int top_child,
                const std::string& prefix) {
  const DesignSpec& spec = *ctx.spec;
  if (depth == 0) {
    LeafInfo leaf;
    leaf.module = parent;
    leaf.top_child = top_child;
    leaf.critical = ctx.rng.chance(spec.critical_unit_fraction);
    ctx.leaf_index.emplace(parent, static_cast<int>(ctx.leaves.size()));
    if (top_child >= 0) {
      if (ctx.leaves_by_top_child.size() <= static_cast<std::size_t>(top_child)) {
        ctx.leaves_by_top_child.resize(static_cast<std::size_t>(top_child) + 1);
      }
      ctx.leaves_by_top_child[static_cast<std::size_t>(top_child)].push_back(
          static_cast<int>(ctx.leaves.size()));
    }
    ctx.leaves.push_back(std::move(leaf));
    return;
  }
  // Slight branching variance so dendrogram levels differ across designs.
  int branches = spec.hierarchy_branching;
  if (depth < spec.hierarchy_depth && branches > 2 && ctx.rng.chance(0.3)) {
    branches += ctx.rng.uniform_int(-1, 1);
  }
  branches = std::max(1, branches);
  for (int b = 0; b < branches; ++b) {
    const std::string name = prefix + "_u" + std::to_string(b);
    const ModuleId child = ctx.nl->add_module(name, parent);
    build_tree(ctx, child, depth - 1, top_child < 0 ? b : top_child, name);
  }
}

/// Builds the macro structure according to the topology, then recurses.
void build_hierarchy(GenContext& ctx) {
  const DesignSpec& spec = *ctx.spec;
  Netlist& nl = *ctx.nl;
  switch (spec.topology) {
    case Topology::kGeneric: {
      build_tree(ctx, nl.root_module(), spec.hierarchy_depth, -1, "m");
      break;
    }
    case Topology::kPipeline: {
      const int stages = std::max(2, spec.hierarchy_branching);
      for (int s = 0; s < stages; ++s) {
        const std::string name = "stage" + std::to_string(s);
        const ModuleId stage = nl.add_module(name, nl.root_module());
        build_tree(ctx, stage, spec.hierarchy_depth - 1, s, name);
      }
      break;
    }
    case Topology::kTiled: {
      const int side = std::max(2, spec.hierarchy_branching);
      for (int t = 0; t < side * side; ++t) {
        const std::string name = "tile" + std::to_string(t);
        const ModuleId tile = nl.add_module(name, nl.root_module());
        build_tree(ctx, tile, spec.hierarchy_depth - 1, t, name);
      }
      break;
    }
    case Topology::kMulticore: {
      const int cores = std::max(2, spec.hierarchy_branching);
      for (int c = 0; c < cores; ++c) {
        const std::string name = "core" + std::to_string(c);
        const ModuleId core = nl.add_module(name, nl.root_module());
        build_tree(ctx, core, spec.hierarchy_depth - 1, c, name);
      }
      const ModuleId uncore = nl.add_module("uncore", nl.root_module());
      build_tree(ctx, uncore, std::max(1, spec.hierarchy_depth - 2), cores,
                 "uncore");
      break;
    }
  }
}

/// Creates the cells of every leaf module and registers their output pins as
/// sources (DFF Q at level 0, combinational outputs at their logic level).
void populate_cells(GenContext& ctx) {
  const DesignSpec& spec = *ctx.spec;
  Netlist& nl = *ctx.nl;
  const GateMix mix(nl.library(), spec.topology == Topology::kPipeline ? 0.45
                    : spec.critical_unit_fraction > 0.2 ? 0.3 : 0.15);
  const liberty::LibCellId dff = *nl.library().find("DFF_X1");

  // Per-leaf cell budget: uniform with +-40% variance (multicore cores get
  // identical budgets to keep the replicated structure honest).
  const std::size_t leaf_count = ctx.leaves.size();
  std::vector<double> weights(leaf_count, 1.0);
  for (std::size_t i = 0; i < leaf_count; ++i) {
    if (spec.topology == Topology::kMulticore || spec.topology == Topology::kTiled) {
      weights[i] = 1.0;
    } else {
      weights[i] = ctx.rng.uniform(0.6, 1.4);
    }
  }
  double weight_sum = 0.0;
  for (double w : weights) weight_sum += w;

  int cell_serial = 0;
  for (std::size_t li = 0; li < leaf_count; ++li) {
    LeafInfo& leaf = ctx.leaves[li];
    const int budget = std::max(
        4, static_cast<int>(std::lround(spec.target_cells * weights[li] / weight_sum)));
    const int max_level =
        leaf.critical ? static_cast<int>(std::lround(spec.logic_depth * 1.6))
                      : spec.logic_depth;
    ctx.max_level = std::max(ctx.max_level, max_level);
    leaf.sources_by_level.resize(static_cast<std::size_t>(max_level) + 1);

    const liberty::LibCellId strong_buf = *nl.library().find("BUF_X4");
    const int reg_count =
        std::max(1, static_cast<int>(std::lround(budget * spec.register_fraction)));
    for (int i = 0; i < budget; ++i) {
      const bool is_reg = i < reg_count;
      // Hub drivers (control-like, high fanout) get a strong buffer, as
      // synthesis would size them; weak cells on hubs would otherwise
      // dominate timing with pathological delays.
      const bool is_hub = !is_reg && ctx.rng.chance(0.03);
      const liberty::LibCellId lc =
          is_reg ? dff : (is_hub ? strong_buf : mix.sample(ctx.rng));
      const std::string name = "g" + std::to_string(cell_serial++);
      const CellId cid = nl.add_cell(name, lc, leaf.module);
      const int level = is_reg ? 0 : ctx.rng.uniform_int(1, max_level);
      const PinId out = nl.cell_output_pin(cid);
      if (out != netlist::kInvalidId) {
        leaf.sources_by_level[static_cast<std::size_t>(level)].push_back(out);
        if (is_hub) leaf.hubs.push_back(out);
      }
    }
  }
}

/// Returns the net driven by `driver`, creating it on first use.
NetId net_for(GenContext& ctx, PinId driver) {
  const auto it = ctx.net_of_driver.find(driver);
  if (it != ctx.net_of_driver.end()) return it->second;
  Netlist& nl = *ctx.nl;
  const NetId net = nl.add_net("n" + std::to_string(nl.net_count()));
  nl.connect(net, driver);
  ctx.net_of_driver.emplace(driver, net);
  return net;
}

/// Picks a source pin from `leaf` with level < max_level (or any level when
/// `any_level`). Prefers deep levels to create long combinational chains and
/// prefers not-yet-used outputs to limit dead logic. Returns kInvalidId when
/// the module has no eligible source.
PinId pick_source_in_leaf(GenContext& ctx, const LeafInfo& leaf, int max_level,
                          bool any_level) {
  const int level_count = static_cast<int>(leaf.sources_by_level.size());
  const int limit = any_level ? level_count : std::min(max_level, level_count);
  if (limit <= 0) return netlist::kInvalidId;

  // Try a few times biased to the deepest eligible level, then fall back to
  // scanning downward.
  for (int attempt = 0; attempt < 4; ++attempt) {
    int level;
    if (ctx.rng.chance(0.5)) {
      level = limit - 1;
    } else {
      level = ctx.rng.uniform_int(0, limit - 1);
    }
    const auto& bucket = leaf.sources_by_level[static_cast<std::size_t>(level)];
    if (bucket.empty()) continue;
    const PinId pick = bucket[ctx.rng.index(bucket.size())];
    // Prefer a driver without a net yet on early attempts (less dead logic).
    if (attempt < 2 && ctx.net_of_driver.count(pick) > 0) continue;
    return pick;
  }
  for (int level = limit - 1; level >= 0; --level) {
    const auto& bucket = leaf.sources_by_level[static_cast<std::size_t>(level)];
    if (!bucket.empty()) return bucket[ctx.rng.index(bucket.size())];
  }
  return netlist::kInvalidId;
}

/// Picks the leaf module a cross-module connection should come from,
/// honouring the design topology.
const LeafInfo& pick_remote_leaf(GenContext& ctx, const LeafInfo& local) {
  const DesignSpec& spec = *ctx.spec;
  const auto& leaves = ctx.leaves;
  auto uniform_leaf = [&]() -> const LeafInfo& {
    return leaves[ctx.rng.index(leaves.size())];
  };
  if (local.top_child < 0) return uniform_leaf();

  switch (spec.topology) {
    case Topology::kPipeline: {
      // Stage s draws its remote inputs from stage s-1 (feed-forward).
      const int prev = local.top_child - 1;
      if (prev >= 0 &&
          static_cast<std::size_t>(prev) < ctx.leaves_by_top_child.size() &&
          !ctx.leaves_by_top_child[static_cast<std::size_t>(prev)].empty()) {
        const auto& pool = ctx.leaves_by_top_child[static_cast<std::size_t>(prev)];
        return leaves[static_cast<std::size_t>(pool[ctx.rng.index(pool.size())])];
      }
      return uniform_leaf();
    }
    case Topology::kTiled: {
      const int side = std::max(2, spec.hierarchy_branching);
      const int x = local.top_child % side;
      const int y = local.top_child / side;
      const int dx[] = {1, -1, 0, 0};
      const int dy[] = {0, 0, 1, -1};
      const int d = ctx.rng.uniform_int(0, 3);
      const int nx = x + dx[d];
      const int ny = y + dy[d];
      if (nx >= 0 && nx < side && ny >= 0 && ny < side) {
        const int neighbour = ny * side + nx;
        if (static_cast<std::size_t>(neighbour) < ctx.leaves_by_top_child.size() &&
            !ctx.leaves_by_top_child[static_cast<std::size_t>(neighbour)].empty()) {
          const auto& pool =
              ctx.leaves_by_top_child[static_cast<std::size_t>(neighbour)];
          return leaves[static_cast<std::size_t>(pool[ctx.rng.index(pool.size())])];
        }
      }
      return uniform_leaf();
    }
    case Topology::kMulticore: {
      // Cores talk mostly to the uncore (the last top-level child).
      const int uncore = static_cast<int>(ctx.leaves_by_top_child.size()) - 1;
      const bool in_uncore = local.top_child == uncore;
      const int target = in_uncore
                             ? ctx.rng.uniform_int(0, uncore - 1)
                             : (ctx.rng.chance(0.8) ? uncore
                                                    : ctx.rng.uniform_int(0, uncore));
      const auto& pool = ctx.leaves_by_top_child[static_cast<std::size_t>(target)];
      if (!pool.empty()) {
        return leaves[static_cast<std::size_t>(pool[ctx.rng.index(pool.size())])];
      }
      return uniform_leaf();
    }
    case Topology::kGeneric:
      return uniform_leaf();
  }
  return uniform_leaf();
}

/// Connects every data input pin to a driver (local / sibling / remote /
/// hub / input port), guaranteeing global acyclicity via logic levels.
void wire_inputs(GenContext& ctx) {
  const DesignSpec& spec = *ctx.spec;
  Netlist& nl = *ctx.nl;

  // Cache each cell's level: invert the source buckets once.
  std::unordered_map<PinId, int> level_of_source;
  for (const LeafInfo& leaf : ctx.leaves) {
    for (std::size_t level = 0; level < leaf.sources_by_level.size(); ++level) {
      for (PinId pin : leaf.sources_by_level[level]) {
        level_of_source.emplace(pin, static_cast<int>(level));
      }
    }
  }

  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    const CellId cid = static_cast<CellId>(ci);
    const netlist::Cell& cell = nl.cell(cid);
    const liberty::LibCell& lc = nl.lib_cell_of(cid);
    const bool is_reg = liberty::is_sequential(lc.function);
    const auto leaf_it = ctx.leaf_index.find(cell.module);
    assert(leaf_it != ctx.leaf_index.end());
    const LeafInfo& local = ctx.leaves[static_cast<std::size_t>(leaf_it->second)];

    // The cell's own level bounds its drivers (strictly lower level).
    int own_level = 0;
    const PinId own_out = nl.cell_output_pin(cid);
    if (own_out != netlist::kInvalidId) {
      const auto lvl = level_of_source.find(own_out);
      if (lvl != level_of_source.end()) own_level = lvl->second;
    }

    for (PinId pid : cell.pins) {
      const netlist::Pin& pin = nl.pin(pid);
      if (pin.dir != liberty::PinDir::kInput || pin.is_clock) continue;

      PinId driver = netlist::kInvalidId;
      // Registers capture any-depth logic; combinational inputs need a
      // strictly lower level to keep the logic acyclic.
      const bool any_level = is_reg;
      const int max_level = is_reg ? 1 << 20 : own_level;

      const double u = ctx.rng.uniform();
      if (u < 0.06 && !local.hubs.empty()) {
        // Hub pick: creates the heavy-tail fanout of control signals. Only
        // accept a hub that respects the level constraint.
        const PinId hub = local.hubs[ctx.rng.index(local.hubs.size())];
        const int hub_level = level_of_source.at(hub);
        if (any_level || hub_level < max_level) driver = hub;
      }
      if (driver == netlist::kInvalidId) {
        if (u < spec.local_net_fraction) {
          driver = pick_source_in_leaf(ctx, local, max_level, any_level);
        } else if (u < spec.local_net_fraction + spec.sibling_net_fraction) {
          // Sibling: another leaf under the same top-level child.
          if (local.top_child >= 0 &&
              static_cast<std::size_t>(local.top_child) <
                  ctx.leaves_by_top_child.size()) {
            const auto& pool =
                ctx.leaves_by_top_child[static_cast<std::size_t>(local.top_child)];
            const LeafInfo& sib =
                ctx.leaves[static_cast<std::size_t>(pool[ctx.rng.index(pool.size())])];
            driver = pick_source_in_leaf(ctx, sib, max_level, any_level);
          }
        } else {
          const LeafInfo& remote = pick_remote_leaf(ctx, local);
          // Cross-module nets may only tap registers or shallow logic so the
          // level argument stays valid globally.
          driver = pick_source_in_leaf(ctx, remote,
                                       std::min(max_level, 2), any_level);
        }
      }
      if (driver == netlist::kInvalidId) {
        driver = pick_source_in_leaf(ctx, local, max_level, any_level);
      }
      if (driver == netlist::kInvalidId && !ctx.input_port_pins.empty()) {
        driver = ctx.input_port_pins[ctx.rng.index(ctx.input_port_pins.size())];
      }
      assert(driver != netlist::kInvalidId && "no eligible driver found");
      nl.connect(net_for(ctx, driver), pid);
    }
  }
}

/// Creates the clock port/net and hooks every flip-flop clock pin to it.
void wire_clock(GenContext& ctx) {
  Netlist& nl = *ctx.nl;
  const PortId clk_port = nl.add_port("clk", liberty::PinDir::kInput);
  const NetId clk_net = nl.add_net("clk");
  nl.connect(clk_net, nl.port(clk_port).pin);
  nl.mark_clock_net(clk_net);
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    const netlist::Cell& cell = nl.cell(static_cast<CellId>(ci));
    for (PinId pid : cell.pins) {
      if (nl.pin(pid).is_clock) nl.connect(clk_net, pid);
    }
  }
}

/// Creates data IO ports. Inputs become level-0 sources for the wiring
/// phase; outputs are attached to random deep drivers afterwards.
void create_input_ports(GenContext& ctx) {
  Netlist& nl = *ctx.nl;
  const int inputs = std::max(1, ctx.spec->io_ports / 2);
  for (int i = 0; i < inputs; ++i) {
    const PortId port = nl.add_port("in" + std::to_string(i), liberty::PinDir::kInput);
    ctx.input_port_pins.push_back(nl.port(port).pin);
    // Register input ports as level-0 sources of random leaf modules so
    // boundary logic naturally connects to the chip interface.
    LeafInfo& leaf = ctx.leaves[ctx.rng.index(ctx.leaves.size())];
    leaf.sources_by_level[0].push_back(nl.port(port).pin);
  }
}

void create_output_ports(GenContext& ctx) {
  Netlist& nl = *ctx.nl;
  const int outputs = std::max(1, ctx.spec->io_ports - ctx.spec->io_ports / 2);
  for (int i = 0; i < outputs; ++i) {
    const PortId port =
        nl.add_port("out" + std::to_string(i), liberty::PinDir::kOutput);
    // Tap a deep source from a random leaf (any level).
    PinId driver = netlist::kInvalidId;
    for (int attempt = 0; attempt < 16 && driver == netlist::kInvalidId; ++attempt) {
      const LeafInfo& leaf = ctx.leaves[ctx.rng.index(ctx.leaves.size())];
      driver = pick_source_in_leaf(ctx, leaf, 1 << 20, /*any_level=*/true);
    }
    assert(driver != netlist::kInvalidId);
    nl.connect(net_for(ctx, driver), nl.port(port).pin);
  }
}

}  // namespace

netlist::Netlist generate(const liberty::Library& lib, const DesignSpec& spec) {
  netlist::Netlist nl(lib, spec.name);
  GenContext ctx(spec.seed);
  ctx.spec = &spec;
  ctx.nl = &nl;

  build_hierarchy(ctx);
  assert(!ctx.leaves.empty());
  populate_cells(ctx);
  create_input_ports(ctx);
  wire_inputs(ctx);
  create_output_ports(ctx);
  wire_clock(ctx);

  const auto problems = nl.validate();
  for (const std::string& p : problems) {
    PPACD_LOG_ERROR("gen") << spec.name << ": " << p;
  }
  assert(problems.empty() && "generated netlist failed validation");
  PPACD_LOG_INFO("gen") << spec.name << ": " << nl.cell_count() << " cells, "
                        << nl.net_count() << " nets, " << nl.module_count()
                        << " modules";
  return nl;
}

}  // namespace ppacd::gen
