/// \file geometry.hpp
/// \brief 2-D geometric primitives (microns, double precision) shared by
/// placement, routing, CTS and the V-P&R virtual die.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

namespace ppacd::geom {

/// A point in microns.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point&, const Point&) = default;
};

/// Manhattan distance between two points.
inline double manhattan(const Point& a, const Point& b) {
  return std::fabs(a.x - b.x) + std::fabs(a.y - b.y);
}

/// Euclidean distance between two points.
inline double euclidean(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Axis-aligned rectangle; empty by default (lo > hi).
struct Rect {
  double lx = 0.0;
  double ly = 0.0;
  double ux = 0.0;
  double uy = 0.0;

  static Rect make(double lx, double ly, double ux, double uy) {
    return Rect{lx, ly, ux, uy};
  }

  double width() const { return ux - lx; }
  double height() const { return uy - ly; }
  double area() const { return std::max(0.0, width()) * std::max(0.0, height()); }
  double half_perimeter() const { return std::max(0.0, width()) + std::max(0.0, height()); }
  Point center() const { return Point{(lx + ux) * 0.5, (ly + uy) * 0.5}; }

  bool contains(const Point& p) const {
    return p.x >= lx && p.x <= ux && p.y >= ly && p.y <= uy;
  }

  bool intersects(const Rect& other) const {
    return lx <= other.ux && other.lx <= ux && ly <= other.uy && other.ly <= uy;
  }

  /// Clamps `p` into this rectangle.
  Point clamp(const Point& p) const {
    return Point{std::clamp(p.x, lx, ux), std::clamp(p.y, ly, uy)};
  }

  friend bool operator==(const Rect&, const Rect&) = default;
};

/// Incrementally grown bounding box; `half_perimeter()` of an empty box is 0.
class BBox {
 public:
  void expand(const Point& p) {
    lx_ = std::min(lx_, p.x);
    ly_ = std::min(ly_, p.y);
    ux_ = std::max(ux_, p.x);
    uy_ = std::max(uy_, p.y);
  }

  bool empty() const { return lx_ > ux_; }

  double half_perimeter() const {
    if (empty()) return 0.0;
    return (ux_ - lx_) + (uy_ - ly_);
  }

  Rect rect() const {
    if (empty()) return Rect{};
    return Rect{lx_, ly_, ux_, uy_};
  }

 private:
  double lx_ = std::numeric_limits<double>::infinity();
  double ly_ = std::numeric_limits<double>::infinity();
  double ux_ = -std::numeric_limits<double>::infinity();
  double uy_ = -std::numeric_limits<double>::infinity();
};

}  // namespace ppacd::geom
