#include "telemetry/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ppacd::telemetry {

void Json::set(std::string_view key, Json value) {
  type_ = Type::kObject;
  for (auto& [existing, member] : members_) {
    if (existing == key) {
      member = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
}

const Json* Json::find(std::string_view key) const {
  for (const auto& [existing, member] : members_) {
    if (existing == key) return &member;
  }
  return nullptr;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

/// Shortest round-trippable representation; JSON has no NaN/Inf, emit null.
void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    out += buffer;
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  // Prefer the shorter %.15g form when it survives a round trip.
  char shorter[32];
  std::snprintf(shorter, sizeof(shorter), "%.15g", value);
  if (std::strtod(shorter, nullptr) == value) {
    out += shorter;
  } else {
    out += buffer;
  }
}

void append_indent(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void Json::dump_to(std::string& out, int indent, int depth) const {
  switch (type_) {
    case Type::kNull: out += "null"; return;
    case Type::kBool: out += bool_ ? "true" : "false"; return;
    case Type::kNumber: append_number(out, number_); return;
    case Type::kString:
      out += '"';
      out += json_escape(string_);
      out += '"';
      return;
    case Type::kArray: {
      if (elements_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent >= 0) append_indent(out, indent, depth + 1);
        elements_[i].dump_to(out, indent, depth + 1);
      }
      if (indent >= 0) append_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        if (indent >= 0) append_indent(out, indent, depth + 1);
        out += '"';
        out += json_escape(members_[i].first);
        out += indent >= 0 ? "\": " : "\":";
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      if (indent >= 0) append_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  bool ok = true;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool match(std::string_view literal) {
    if (text.substr(pos, literal.size()) != literal) return false;
    pos += literal.size();
    return true;
  }

  Json fail() {
    ok = false;
    return Json();
  }

  Json parse_string() {
    // Opening quote already consumed.
    std::string out;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return Json(std::move(out));
      if (c == '\\') {
        if (pos >= text.size()) return fail();
        const char esc = text[pos++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail();
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail();
            }
            // UTF-8 encode (surrogate pairs unsupported; telemetry never
            // emits them).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail();
        }
      } else {
        out += c;
      }
    }
    return fail();  // unterminated
  }

  Json parse_number() {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            text[pos] == '+' || text[pos] == '-')) {
      ++pos;
    }
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == token.c_str()) return fail();
    return Json(value);
  }

  Json parse_value(int depth) {
    if (depth > 200) return fail();  // runaway nesting guard
    skip_ws();
    if (pos >= text.size()) return fail();
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      Json obj = Json::object();
      skip_ws();
      if (consume('}')) return obj;
      while (ok) {
        if (!consume('"')) return fail();
        Json key = parse_string();
        if (!ok) return Json();
        if (!consume(':')) return fail();
        Json value = parse_value(depth + 1);
        if (!ok) return Json();
        obj.set(key.as_string(), std::move(value));
        if (consume(',')) continue;
        if (consume('}')) return obj;
        return fail();
      }
      return Json();
    }
    if (c == '[') {
      ++pos;
      Json arr = Json::array();
      skip_ws();
      if (consume(']')) return arr;
      while (ok) {
        Json value = parse_value(depth + 1);
        if (!ok) return Json();
        arr.push_back(std::move(value));
        if (consume(',')) continue;
        if (consume(']')) return arr;
        return fail();
      }
      return Json();
    }
    if (c == '"') {
      ++pos;
      return parse_string();
    }
    if (match("null")) return Json();
    if (match("true")) return Json(true);
    if (match("false")) return Json(false);
    return parse_number();
  }
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  Parser parser{text};
  Json value = parser.parse_value(0);
  parser.skip_ws();
  if (!parser.ok || parser.pos != text.size()) return std::nullopt;
  return value;
}

}  // namespace ppacd::telemetry
