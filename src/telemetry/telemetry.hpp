/// \file telemetry.hpp
/// \brief Flow-wide observability: a process-wide metrics registry (counters,
/// gauges, fixed-bucket histograms) and nesting RAII trace spans.
///
/// Design goals:
///   * Hot-path friendly: metric handles are resolved once per call site (the
///     macros cache a reference in a function-local static) and updated with
///     relaxed atomics; no lock is taken on the increment path.
///   * Nesting spans: `TraceSpan` records wall time plus user attributes and
///     tracks parent/depth through a thread-local stack, so clustering ->
///     per-level coarsening, shaping -> per-cluster V-P&R, and placement ->
///     per-iteration hierarchies come out as a tree.
///   * Exportable: spans serialize as a human-readable tree and as Chrome
///     `trace_event` JSON loadable in chrome://tracing; metrics snapshot to
///     JSON for the per-run report (see flow/report.hpp).
///   * Compile-out: building with -DPPACD_TELEMETRY=OFF defines
///     PPACD_TELEMETRY_DISABLED and turns every PPACD_* macro below into a
///     no-op; the classes stay available so tools/tests still link.
///
/// Metric naming scheme: `phase.subsystem.name` (e.g. `place.gp.overflow`,
/// `cluster.fc.merges`, `route.rrr.rounds`); see DESIGN.md "Observability".
#pragma once
// lint:allow-file(raw-thread): metrics registry is cross-thread infra by design

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/json.hpp"

namespace ppacd::telemetry {

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Monotonically increasing integer metric.
class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-value metric.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `upper_bounds` are inclusive bucket ceilings in
/// ascending order; one implicit overflow bucket catches everything above the
/// last bound. Observation is lock-free (one relaxed fetch_add per atomic).
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double value);

  std::int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Per-bucket counts; size is upper_bounds().size() + 1 (overflow last).
  std::vector<std::int64_t> bucket_counts() const;
  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Estimated q-quantile (q in [0, 1]); see percentile_from_buckets().
  double percentile(double q) const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::int64_t>[]> buckets_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default histogram bucket ceilings: one decade ladder, 1e-4 .. 1e6.
const std::vector<double>& default_histogram_bounds();

/// Estimated q-quantile (q clamped to [0, 1]) from fixed-bucket counts:
/// `counts` has one entry per bound plus the overflow bucket, as produced by
/// Histogram::bucket_counts(). Linear interpolation within the target bucket,
/// with the first bucket treated as [bounds[0], bounds[0]] (its lower edge is
/// unknown) and the overflow bucket pinned to the last bound. Returns 0.0
/// when there are no samples.
double percentile_from_buckets(const std::vector<double>& bounds,
                               const std::vector<std::int64_t>& counts,
                               double q);

/// Process-wide registry of named metrics. Registration (first use of a name)
/// takes a mutex; returned references stay valid for the process lifetime, so
/// call sites may cache them. reset() zeroes every value but never invalidates
/// handles.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `upper_bounds` applies only on first registration of `name` (empty =>
  /// default_histogram_bounds()).
  Histogram& histogram(std::string_view name,
                       const std::vector<double>& upper_bounds = {});

  /// JSON snapshot: {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  Json to_json() const;

  /// Zeroes all registered metrics (handles stay valid).
  void reset();

 private:
  struct Impl;
  Impl& impl() const;
};

/// The process-wide registry.
MetricsRegistry& metrics();

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

/// One attribute attached to a span.
struct SpanAttr {
  std::string key;
  bool is_number = true;
  double number = 0.0;
  std::string text;
};

/// A completed (or still-open, dur_us < 0) span in the global span store.
struct SpanRecord {
  std::string name;
  double start_us = 0.0;  ///< since the process telemetry epoch
  double dur_us = -1.0;
  int depth = 0;
  std::int64_t parent = -1;  ///< index into the store, -1 for roots
  std::uint32_t thread = 0;  ///< small sequential per-thread id
  std::vector<SpanAttr> attrs;
};

/// RAII wall-time span. Construction pushes onto the calling thread's span
/// stack (establishing parent/depth); destruction records the duration.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name) : TraceSpan(name, true) {}
  /// `active == false` records nothing (cheap conditional instrumentation,
  /// e.g. per-iteration placer spans only for top-level flow placements).
  TraceSpan(std::string_view name, bool active);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void attr(std::string_view key, double value);
  void attr(std::string_view key, std::int64_t value) {
    attr(key, static_cast<double>(value));
  }
  void attr(std::string_view key, int value) {
    attr(key, static_cast<double>(value));
  }
  void attr(std::string_view key, std::size_t value) {
    attr(key, static_cast<double>(value));
  }
  void attr(std::string_view key, std::string_view value);

  /// Registers this span as the process-wide *anchor*: a span constructed on
  /// a thread whose own span stack is empty (e.g. an exec pool worker inside
  /// a parallel region) parents under the anchor instead of becoming a root.
  /// The flow anchors each phase span, so worker spans land under the phase
  /// they ran in. The anchor clears when this span is destroyed; only one
  /// anchor is live at a time (last call wins).
  void anchor();

 private:
  std::int64_t index_ = -1;
  std::uint64_t generation_ = 0;
};

/// Stand-in for TraceSpan when telemetry is compiled out.
class NullSpan {
 public:
  explicit NullSpan(std::string_view) {}
  NullSpan(std::string_view, bool) {}
  template <typename V>
  void attr(std::string_view, const V&) {}
  void anchor() {}
};

/// Runtime collection switch (default on). Disabling stops new spans and
/// metric *macro* updates are unaffected (they stay cheap); use the compile
/// flag to remove those too.
bool enabled();
void set_enabled(bool enabled);

/// Microseconds since the process telemetry epoch (first telemetry use).
double now_us();

/// Copy of all recorded spans (open spans have dur_us < 0).
std::vector<SpanRecord> span_snapshot();

/// Clears the span store. Only call when no spans are live on any thread
/// (live RAII spans from before the reset are ignored at destruction).
void reset_spans();

/// Human-readable indented tree of all recorded spans.
std::string span_tree();

/// All recorded spans as a JSON array of {name, start_us, dur_us, depth,
/// parent, thread, attrs}.
Json spans_json();

/// Spans as Chrome trace_event JSON: {"traceEvents": [...], ...}. Load via
/// chrome://tracing or https://ui.perfetto.dev.
Json chrome_trace_json();

/// Writes chrome_trace_json() to `path`; false on I/O error.
bool write_chrome_trace(const std::string& path);

/// Generic artifact: {"label": ..., "spans": [...], "metrics": {...}}.
/// Used by the bench harness; the flow CLI writes the richer run report.
Json summary_json(std::string_view label);
bool write_summary(const std::string& path, std::string_view label);

// ---------------------------------------------------------------------------
// Instrumentation macros (compile out with -DPPACD_TELEMETRY=OFF)
// ---------------------------------------------------------------------------

#if defined(PPACD_TELEMETRY_DISABLED)

/// Type-checks the operands without ever evaluating them (dead branch).
#define PPACD_TELEMETRY_NOOP_(expr) \
  do {                              \
    if (false) {                    \
      expr;                         \
    }                               \
  } while (0)

#define PPACD_SPAN(var, name) ::ppacd::telemetry::NullSpan var{(name)}
#define PPACD_SPAN_IF(var, name, active) \
  ::ppacd::telemetry::NullSpan var { (name), static_cast<bool>(active) }
#define PPACD_SPAN_ATTR(var, key, value) \
  PPACD_TELEMETRY_NOOP_(((void)(var), (void)(key), (void)(value)))
#define PPACD_COUNT(name, delta) \
  PPACD_TELEMETRY_NOOP_(((void)(name), (void)(delta)))
#define PPACD_GAUGE_SET(name, value) \
  PPACD_TELEMETRY_NOOP_(((void)(name), (void)(value)))
#define PPACD_HIST(name, value) \
  PPACD_TELEMETRY_NOOP_(((void)(name), (void)(value)))

#else

#define PPACD_SPAN(var, name) ::ppacd::telemetry::TraceSpan var{(name)}
#define PPACD_SPAN_IF(var, name, active) \
  ::ppacd::telemetry::TraceSpan var { (name), static_cast<bool>(active) }
#define PPACD_SPAN_ATTR(var, key, value) (var).attr((key), (value))
/// The handle is resolved once per call site; updates are relaxed atomics.
#define PPACD_COUNT(name, delta)                                      \
  do {                                                                \
    static ::ppacd::telemetry::Counter& ppacd_tm_handle_ =            \
        ::ppacd::telemetry::metrics().counter(name);                  \
    ppacd_tm_handle_.add(static_cast<std::int64_t>(delta));           \
  } while (0)
#define PPACD_GAUGE_SET(name, value)                                  \
  do {                                                                \
    static ::ppacd::telemetry::Gauge& ppacd_tm_handle_ =              \
        ::ppacd::telemetry::metrics().gauge(name);                    \
    ppacd_tm_handle_.set(static_cast<double>(value));                 \
  } while (0)
#define PPACD_HIST(name, value)                                       \
  do {                                                                \
    static ::ppacd::telemetry::Histogram& ppacd_tm_handle_ =          \
        ::ppacd::telemetry::metrics().histogram(name);                \
    ppacd_tm_handle_.observe(static_cast<double>(value));             \
  } while (0)

#endif  // PPACD_TELEMETRY_DISABLED

}  // namespace ppacd::telemetry
