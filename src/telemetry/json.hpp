/// \file json.hpp
/// \brief Minimal JSON value with a writer and a strict parser.
///
/// Backs the telemetry artifacts (run reports, Chrome traces): small enough
/// to have no dependencies, complete enough that the emitted files can be
/// round-trip parsed in tests and validated by the smoke target. Objects
/// preserve insertion order so reports are stable across runs.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace ppacd::telemetry {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(double value) : type_(Type::kNumber), number_(value) {}
  /// Any non-bool integer (int, int64_t, size_t, ...) becomes a number.
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  Json(T value) : Json(static_cast<double>(value)) {}
  Json(const char* value) : type_(Type::kString), string_(value) {}
  Json(std::string_view value) : type_(Type::kString), string_(value) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_double() const { return number_; }
  const std::string& as_string() const { return string_; }

  /// Array element count or object member count (0 for scalars).
  std::size_t size() const {
    return is_object() ? members_.size() : elements_.size();
  }

  // --- Array interface --------------------------------------------------------
  void push_back(Json value) {
    type_ = Type::kArray;
    elements_.push_back(std::move(value));
  }
  const Json& at(std::size_t index) const { return elements_.at(index); }
  const std::vector<Json>& elements() const { return elements_; }

  // --- Object interface -------------------------------------------------------
  /// Inserts or overwrites `key`.
  void set(std::string_view key, Json value);
  /// Member lookup; nullptr when absent (or not an object).
  const Json* find(std::string_view key) const;
  bool contains(std::string_view key) const { return find(key) != nullptr; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }

  /// Serializes the value. `indent` < 0 means compact single-line output;
  /// otherwise pretty-printed with that many spaces per level.
  std::string dump(int indent = -1) const;

  /// Strict parse of a complete JSON document; nullopt on any error (trailing
  /// garbage included).
  static std::optional<Json> parse(std::string_view text);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> elements_;
  std::vector<std::pair<std::string, Json>> members_;
};

/// Escapes `text` as the *contents* of a JSON string literal (no quotes).
std::string json_escape(std::string_view text);

}  // namespace ppacd::telemetry
