// lint:allow-file(raw-thread): metrics registry is cross-thread infra by design
#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <thread>

namespace ppacd::telemetry {

namespace {

/// Relaxed atomic double accumulation (no std::atomic<double>::fetch_add
/// before C++20 on all targets; the CAS loop is portable).
void atomic_add(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  buckets_ = std::make_unique<std::atomic<std::int64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
}

std::vector<std::int64_t> Histogram::bucket_counts() const {
  std::vector<std::int64_t> counts(bounds_.size() + 1);
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return counts;
}

double Histogram::percentile(double q) const {
  return percentile_from_buckets(bounds_, bucket_counts(), q);
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

double percentile_from_buckets(const std::vector<double>& bounds,
                               const std::vector<std::int64_t>& counts,
                               double q) {
  std::int64_t total = 0;
  for (const std::int64_t c : counts) total += c;
  if (total <= 0 || bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based, q = 0 -> first, q = 1 -> last.
  const double rank = 1.0 + q * static_cast<double>(total - 1);
  std::int64_t below = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (static_cast<double>(below + counts[i]) >= rank) {
      if (i >= bounds.size()) return bounds.back();  // overflow bucket
      if (i == 0) return bounds[0];  // lower edge unknown: pin to ceiling
      const double frac =
          (rank - static_cast<double>(below)) / static_cast<double>(counts[i]);
      return bounds[i - 1] + frac * (bounds[i] - bounds[i - 1]);
    }
    below += counts[i];
  }
  return bounds.back();
}

const std::vector<double>& default_histogram_bounds() {
  static const std::vector<double> bounds = {1e-4, 1e-3, 1e-2, 1e-1, 1.0,
                                             10.0, 1e2,  1e3,  1e4,  1e5,
                                             1e6};
  return bounds;
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  // Node-based maps: references stay valid across later registrations.
  std::map<std::string, Counter, std::less<>> counters;
  std::map<std::string, Gauge, std::less<>> gauges;
  std::map<std::string, Histogram, std::less<>> histograms;
};

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl instance;
  return instance;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  const auto it = state.counters.find(name);
  if (it != state.counters.end()) return it->second;
  return state.counters.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  const auto it = state.gauges.find(name);
  if (it != state.gauges.end()) return it->second;
  return state.gauges.try_emplace(std::string(name)).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      const std::vector<double>& upper_bounds) {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  const auto it = state.histograms.find(name);
  if (it != state.histograms.end()) return it->second;
  return state.histograms
      .try_emplace(std::string(name), upper_bounds.empty()
                                          ? default_histogram_bounds()
                                          : upper_bounds)
      .first->second;
}

Json MetricsRegistry::to_json() const {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  Json counters = Json::object();
  for (const auto& [name, counter] : state.counters) {
    counters.set(name, counter.value());
  }
  Json gauges = Json::object();
  for (const auto& [name, gauge] : state.gauges) {
    gauges.set(name, gauge.value());
  }
  Json histograms = Json::object();
  for (const auto& [name, histogram] : state.histograms) {
    Json entry = Json::object();
    entry.set("count", histogram.count());
    entry.set("sum", histogram.sum());
    Json bounds = Json::array();
    for (const double b : histogram.upper_bounds()) bounds.push_back(b);
    entry.set("upper_bounds", std::move(bounds));
    Json buckets = Json::array();
    for (const std::int64_t c : histogram.bucket_counts()) buckets.push_back(c);
    entry.set("buckets", std::move(buckets));
    histograms.set(name, std::move(entry));
  }
  Json out = Json::object();
  out.set("counters", std::move(counters));
  out.set("gauges", std::move(gauges));
  out.set("histograms", std::move(histograms));
  return out;
}

void MetricsRegistry::reset() {
  Impl& state = impl();
  std::lock_guard<std::mutex> lock(state.mutex);
  for (auto& [name, counter] : state.counters) counter.reset();
  for (auto& [name, gauge] : state.gauges) gauge.reset();
  for (auto& [name, histogram] : state.histograms) histogram.reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

// ---------------------------------------------------------------------------
// Span store
// ---------------------------------------------------------------------------

namespace {

/// Backstop against unbounded growth in pathological runs; drops (and counts)
/// spans beyond the cap rather than exhausting memory.
constexpr std::size_t kMaxSpans = 1u << 20;

struct SpanStore {
  std::mutex mutex;
  std::vector<SpanRecord> records;
  std::uint64_t generation = 1;  ///< bumped by reset_spans()
  std::int64_t dropped = 0;
  std::uint32_t next_thread_id = 0;
  // Fallback parent for spans opened on threads with an empty span stack
  // (pool workers). Set by TraceSpan::anchor(); validated by generation.
  std::int64_t anchor_index = -1;
  std::uint64_t anchor_generation = 0;
};

SpanStore& span_store() {
  static SpanStore store;
  return store;
}

std::atomic<bool> g_enabled{true};

std::chrono::steady_clock::time_point epoch() {
  static const auto start = std::chrono::steady_clock::now();
  return start;
}

std::uint32_t this_thread_id() {
  thread_local std::uint32_t id = [] {
    SpanStore& store = span_store();
    std::lock_guard<std::mutex> lock(store.mutex);
    return store.next_thread_id++;
  }();
  return id;
}

/// Per-thread stack of open span indices (parent tracking).
thread_local std::vector<std::int64_t> t_span_stack;

std::string format_attr(const SpanAttr& attr) {
  if (!attr.is_number) return attr.text;
  char buffer[32];
  if (attr.number == static_cast<std::int64_t>(attr.number)) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(attr.number));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.4g", attr.number);
  }
  return buffer;
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return false;
  out << content << '\n';
  return static_cast<bool>(out);
}

}  // namespace

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch())
      .count();
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool value) {
  g_enabled.store(value, std::memory_order_relaxed);
}

TraceSpan::TraceSpan(std::string_view name, bool active) {
  if (!active || !enabled()) return;
  const double start = now_us();
  // Resolve the thread id before locking: its first-use initializer takes the
  // store mutex itself, and std::mutex is not recursive.
  const std::uint32_t thread = this_thread_id();
  SpanStore& store = span_store();
  std::lock_guard<std::mutex> lock(store.mutex);
  if (store.records.size() >= kMaxSpans) {
    ++store.dropped;
    return;
  }
  SpanRecord record;
  record.name = std::string(name);
  record.start_us = start;
  if (!t_span_stack.empty()) {
    record.depth = static_cast<int>(t_span_stack.size());
    record.parent = t_span_stack.back();
  } else if (store.anchor_index >= 0 &&
             store.anchor_generation == store.generation) {
    // Off-main-thread span: attach under the anchored phase span.
    record.parent = store.anchor_index;
    record.depth =
        store.records[static_cast<std::size_t>(store.anchor_index)].depth + 1;
  } else {
    record.depth = 0;
    record.parent = -1;
  }
  record.thread = thread;
  index_ = static_cast<std::int64_t>(store.records.size());
  generation_ = store.generation;
  store.records.push_back(std::move(record));
  t_span_stack.push_back(index_);
}

TraceSpan::~TraceSpan() {
  if (index_ < 0) return;
  const double end = now_us();
  SpanStore& store = span_store();
  std::lock_guard<std::mutex> lock(store.mutex);
  if (!t_span_stack.empty() && t_span_stack.back() == index_) {
    t_span_stack.pop_back();
  }
  if (store.generation != generation_) return;  // store was reset under us
  if (store.anchor_index == index_ && store.anchor_generation == generation_) {
    store.anchor_index = -1;  // the anchored span is closing
  }
  SpanRecord& record = store.records[static_cast<std::size_t>(index_)];
  record.dur_us = end - record.start_us;
}

void TraceSpan::anchor() {
  if (index_ < 0) return;
  SpanStore& store = span_store();
  std::lock_guard<std::mutex> lock(store.mutex);
  if (store.generation != generation_) return;
  store.anchor_index = index_;
  store.anchor_generation = generation_;
}

void TraceSpan::attr(std::string_view key, double value) {
  if (index_ < 0) return;
  SpanStore& store = span_store();
  std::lock_guard<std::mutex> lock(store.mutex);
  if (store.generation != generation_) return;
  SpanAttr attr;
  attr.key = std::string(key);
  attr.number = value;
  store.records[static_cast<std::size_t>(index_)].attrs.push_back(
      std::move(attr));
}

void TraceSpan::attr(std::string_view key, std::string_view value) {
  if (index_ < 0) return;
  SpanStore& store = span_store();
  std::lock_guard<std::mutex> lock(store.mutex);
  if (store.generation != generation_) return;
  SpanAttr attr;
  attr.key = std::string(key);
  attr.is_number = false;
  attr.text = std::string(value);
  store.records[static_cast<std::size_t>(index_)].attrs.push_back(
      std::move(attr));
}

std::vector<SpanRecord> span_snapshot() {
  SpanStore& store = span_store();
  std::lock_guard<std::mutex> lock(store.mutex);
  return store.records;
}

void reset_spans() {
  SpanStore& store = span_store();
  std::lock_guard<std::mutex> lock(store.mutex);
  store.records.clear();
  store.dropped = 0;
  ++store.generation;
  store.anchor_index = -1;
  t_span_stack.clear();  // only this thread's stack; see header contract
}

std::string span_tree() {
  const std::vector<SpanRecord> records = span_snapshot();
  std::string out;
  for (const SpanRecord& record : records) {
    out.append(static_cast<std::size_t>(record.depth) * 2, ' ');
    out += record.name;
    char buffer[64];
    if (record.dur_us >= 0.0) {
      std::snprintf(buffer, sizeof(buffer), "  %.3f ms",
                    record.dur_us / 1000.0);
    } else {
      std::snprintf(buffer, sizeof(buffer), "  (open)");
    }
    out += buffer;
    for (const SpanAttr& attr : record.attrs) {
      out += "  ";
      out += attr.key;
      out += '=';
      out += format_attr(attr);
    }
    out += '\n';
  }
  return out;
}

Json chrome_trace_json() {
  const std::vector<SpanRecord> records = span_snapshot();
  Json events = Json::array();
  for (const SpanRecord& record : records) {
    Json event = Json::object();
    event.set("name", record.name);
    event.set("ph", "X");
    event.set("ts", record.start_us);
    event.set("dur", record.dur_us >= 0.0 ? record.dur_us : 0.0);
    event.set("pid", 1);
    event.set("tid", static_cast<std::int64_t>(record.thread) + 1);
    event.set("cat", "ppacd");
    if (!record.attrs.empty()) {
      Json args = Json::object();
      for (const SpanAttr& attr : record.attrs) {
        if (attr.is_number) {
          args.set(attr.key, attr.number);
        } else {
          args.set(attr.key, attr.text);
        }
      }
      event.set("args", std::move(args));
    }
    events.push_back(std::move(event));
  }
  Json trace = Json::object();
  trace.set("traceEvents", std::move(events));
  trace.set("displayTimeUnit", "ms");
  return trace;
}

bool write_chrome_trace(const std::string& path) {
  return write_text_file(path, chrome_trace_json().dump());
}

namespace {

Json span_record_json(const SpanRecord& record) {
  Json span = Json::object();
  span.set("name", record.name);
  span.set("start_us", record.start_us);
  span.set("dur_us", record.dur_us);
  span.set("depth", record.depth);
  span.set("parent", static_cast<double>(record.parent));
  span.set("thread", static_cast<std::int64_t>(record.thread));
  if (!record.attrs.empty()) {
    Json attrs = Json::object();
    for (const SpanAttr& attr : record.attrs) {
      if (attr.is_number) {
        attrs.set(attr.key, attr.number);
      } else {
        attrs.set(attr.key, attr.text);
      }
    }
    span.set("attrs", std::move(attrs));
  }
  return span;
}

}  // namespace

Json spans_json() {
  Json spans = Json::array();
  for (const SpanRecord& record : span_snapshot()) {
    spans.push_back(span_record_json(record));
  }
  return spans;
}

Json summary_json(std::string_view label) {
  Json out = Json::object();
  out.set("label", label);
  out.set("spans", spans_json());
  out.set("metrics", metrics().to_json());
  return out;
}

bool write_summary(const std::string& path, std::string_view label) {
  return write_text_file(path, summary_json(label).dump(2));
}

}  // namespace ppacd::telemetry
