/// \file fault.hpp
/// \brief Deterministic, seed-driven fault injection and the flow-wide
/// degradation log.
///
/// The paper's flow already contains a natural degradation path (Sec. 3.2:
/// the GNN stands in for 20 virtual P&R runs, and actual P&R is the fallback
/// when the predictor is unavailable or out-of-distribution). This module
/// generalizes that idea: named *fault sites* inside the subsystems consult
/// a process-wide `FaultPlan` and, when a fault fires, force the site down
/// its error path — so the graceful-degradation policies in flow/ are
/// continuously exercisable instead of dead code.
///
/// Registered sites (DESIGN.md §12 has the full table):
///   io.read         netlist / model deserialization
///   vpr.shape_eval  one V-P&R shape-candidate evaluation
///   ml.predict      the GNN TotalCost predictor call
///   place.shard     one shard solve of the sharded placement pass
///   place.solve     one global-placement outer iteration
///   route.maze      one net's (re)route
///   sta.arrival     the STA propagation pass
///
/// Determinism: a fault fires as a pure function of (plan seed, site,
/// logical key, attempt) — never of dynamic hit order — so injected runs are
/// bit-identical at any thread count. The `key` is a caller-chosen stable id
/// for the logical operation (cluster index, net id, iteration number).
///
/// Plan spec grammar (CLI `--fault-plan`, env `PPACD_FAULTS`):
///   spec    := entry (';' entry)*
///   entry   := 'seed=' UINT | SITE '=' KIND selector*
///   KIND    := 'error' | 'timeout' | 'poison' | 'alloc'
///   selector:= '@' UINT   fire only for logical key UINT-1 (1-based)
///            | '%' FLOAT  fire with this probability (deterministic hash)
/// With no selector the fault fires on every hit. Examples:
///   "vpr.shape_eval=error"            every candidate eval fails
///   "route.maze=error%0.25;seed=7"    a quarter of the nets fail (seeded)
///   "ml.predict=timeout@2"            the 2nd cluster's predictor times out
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fault/expected.hpp"
#include "telemetry/json.hpp"

namespace ppacd::fault {

// ---------------------------------------------------------------------------
// Fault kinds and plans
// ---------------------------------------------------------------------------

/// What an armed site is forced to do.
enum class FaultKind {
  kError,    ///< return the site's structured error
  kTimeout,  ///< behave as if the operation exceeded its deadline
  kPoison,   ///< inject NaN into the site's numeric result
  kAlloc,    ///< simulate allocation failure (std::bad_alloc path)
};

const char* to_string(FaultKind kind);

/// One plan entry: inject `kind` at `site`, filtered by the selectors.
struct FaultSpec {
  std::string site;
  FaultKind kind = FaultKind::kError;
  /// 0 = every key; N>0 = only the logical operation with key N-1.
  std::uint64_t nth = 0;
  /// Firing probability in (0,1]; 1.0 = unconditional. Evaluated as a
  /// deterministic hash of (plan seed, site, key, attempt), so retries of a
  /// probabilistic (transient) fault may succeed while `nth`/unconditional
  /// (permanent) faults keep firing.
  double probability = 1.0;

  friend bool operator==(const FaultSpec& a, const FaultSpec& b) {
    return a.site == b.site && a.kind == b.kind && a.nth == b.nth &&
           a.probability == b.probability;
  }
};

/// A full injection campaign: seed + one spec per site.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultSpec> specs;

  bool empty() const { return specs.empty(); }

  friend bool operator==(const FaultPlan& a, const FaultPlan& b) {
    return a.seed == b.seed && a.specs == b.specs;
  }
};

/// Parses the spec grammar above. Unknown sites, kinds, or malformed
/// selectors yield an error naming the offending entry.
Expected<FaultPlan, FlowError> parse_plan(std::string_view spec);

/// Canonical spec string; parse_plan(to_spec(plan)) == plan (round-trip).
std::string to_spec(const FaultPlan& plan);

/// The fixed site registry (sorted). parse_plan validates against it and the
/// fault campaign test iterates it.
const std::vector<std::string>& registered_sites();

// ---------------------------------------------------------------------------
// Process-wide plan
// ---------------------------------------------------------------------------

/// Installs `plan` process-wide (replacing any previous plan).
void set_plan(const FaultPlan& plan);

/// Removes the active plan; trigger() reverts to its no-op fast path.
void clear_plan();

/// True when a non-empty plan is installed (relaxed-atomic fast check).
bool plan_active();

/// Installs a plan from the PPACD_FAULTS environment variable, if set.
/// Returns false (with the parse error) on a malformed value.
Expected<void, FlowError> install_env_plan();

/// The injection decision for one logical operation at `site`. Returns
/// nullopt (and costs one relaxed atomic load) when no plan is active.
/// `key` identifies the logical operation (NOT the dynamic hit index) and
/// `attempt` distinguishes retries — both feed the deterministic hash so
/// results are thread-count independent. Fired injections bump the
/// `fault.injected.<kind>` counters.
std::optional<FaultKind> trigger(std::string_view site, std::uint64_t key = 0,
                                 std::uint32_t attempt = 0);

/// Maps a fired fault to its structured error: kError -> "<site>-failed",
/// kTimeout -> "<site>-timeout", kPoison -> "non-finite-result", kAlloc ->
/// "alloc-failure" (site dots become dashes, underscores too).
FlowError make_error(std::string_view site, FaultKind kind);

/// Quiet NaN, for sites implementing kPoison on a numeric result.
double poison_value();

// ---------------------------------------------------------------------------
// Degradation / error log
// ---------------------------------------------------------------------------
// Mirrors the src/check process-wide log: fallback points record what they
// degraded and why; the JSON run report serializes the log into its
// "errors" / "degradations" arrays and tests reset it between cases.
// Recording must happen from serial context (or in a deterministic order)
// so degraded runs stay bit-identical across thread counts.

/// One graceful degradation: `site` failed with `error_code`, the flow
/// continued via `fallback` (e.g. "vpr-exact", "default-shape",
/// "partial-routes", "hpwl-only", "early-stop").
struct Degradation {
  std::string site;
  std::string error_code;
  std::string fallback;
  std::string detail;

  friend bool operator==(const Degradation& a, const Degradation& b) {
    return a.site == b.site && a.error_code == b.error_code &&
           a.fallback == b.fallback && a.detail == b.detail;
  }
};

/// Appends to the degradation log and bumps `fault.degrade.<label>` where
/// `label` is `fallback` with dashes mapped to underscores.
void record_degradation(Degradation degradation);

/// Appends a non-fatal structured error to the error log (fatal errors are
/// returned through Expected instead and recorded by the caller that
/// serializes the run report).
void record_error(FlowError error);

std::vector<Degradation> degradation_log();
std::vector<FlowError> error_log();
void reset_log();

/// The logs as JSON arrays for the run report: errors as
/// [{code, site, message}...], degradations as
/// [{site, error_code, fallback, detail}...].
telemetry::Json errors_json();
telemetry::Json degradations_json();

// ---------------------------------------------------------------------------
// Degradation policies
// ---------------------------------------------------------------------------

/// What the flow does when a subsystem reports a FlowError
/// (FlowOptions::degrade). Every enabled fallback records a Degradation and
/// bumps its `fault.degrade.*` counter; disabling a policy turns the
/// corresponding failure into a propagated FlowError instead.
struct DegradePolicy {
  /// ML predictor failure / out-of-distribution output -> actual V-P&R
  /// scoring for that cluster (the paper's own fallback).
  bool ml_fallback_to_vpr = true;
  /// Per-cluster shape-sweep failure -> keep the default shape
  /// (AR 1.0, utilization 0.9 — the paper's uniform baseline).
  bool shape_fallback_default = true;
  /// Placer failure mid-iteration -> stop early with the best placement so
  /// far instead of failing the flow.
  bool place_early_stop = true;
  /// Shard-solve failure in the sharded placement pass -> that shard keeps
  /// its cluster-induced (VPR) seed positions; the stitch still runs.
  bool shard_fallback_seed = true;
  /// Router batch failure -> serial retries with bounded backoff, then
  /// report partial routes for the nets that still fail.
  int route_retries = 2;
  /// Milliseconds of backoff between serial route retries (scaled by the
  /// attempt number). 0 keeps injected-fault campaigns fast.
  int route_backoff_ms = 0;
  /// STA failure -> HPWL-only cost: WNS/TNS report 0 (unavailable), power
  /// falls back to activity-only estimation.
  bool sta_fallback_hpwl = true;
};

}  // namespace ppacd::fault
