// lint:allow-file(raw-thread): lock-free fast-path gate; infra layer, not solver code
#include "fault/fault.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdlib>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>

#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"
#include "util/string_utils.hpp"

namespace ppacd::fault {

namespace {

/// Sorted so `registered_sites()` iteration (the fault campaign) and
/// to_spec() output are canonical.
const std::vector<std::string> kSites = {
    "io.read",    "ml.predict",  "place.shard",    "place.solve",
    "route.maze", "sta.arrival", "vpr.shape_eval",
};

struct PlanState {
  FaultPlan plan;
};

std::mutex g_plan_mutex;
std::shared_ptr<const PlanState> g_plan;  // guarded by g_plan_mutex
std::atomic<bool> g_active{false};        // fast-path gate for trigger()

std::shared_ptr<const PlanState> plan_snapshot() {
  std::lock_guard<std::mutex> lock(g_plan_mutex);
  return g_plan;
}

std::mutex g_log_mutex;
std::vector<Degradation> g_degradations;  // guarded by g_log_mutex
std::vector<FlowError> g_errors;          // guarded by g_log_mutex

/// SplitMix64: the decision hash behind probabilistic specs. Pure function
/// of its inputs, so firing is identical for any thread count.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::string_view trim(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

bool parse_kind(std::string_view text, FaultKind* out) {
  if (text == "error") *out = FaultKind::kError;
  else if (text == "timeout") *out = FaultKind::kTimeout;
  else if (text == "poison") *out = FaultKind::kPoison;
  else if (text == "alloc") *out = FaultKind::kAlloc;
  else return false;
  return true;
}

/// "vpr.shape_eval" -> "vpr-shape-eval" (error-code prefix form).
std::string kebab_site(std::string_view site) {
  std::string out(site);
  for (char& c : out) {
    if (c == '.' || c == '_') c = '-';
  }
  return out;
}

}  // namespace

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kError: return "error";
    case FaultKind::kTimeout: return "timeout";
    case FaultKind::kPoison: return "poison";
    case FaultKind::kAlloc: return "alloc";
  }
  return "?";
}

const std::vector<std::string>& registered_sites() { return kSites; }

Expected<FaultPlan, FlowError> parse_plan(std::string_view spec) {
  FaultPlan plan;
  for (const std::string& raw : util::split(spec, ';')) {
    const std::string_view entry = trim(raw);
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      return err("fault-plan-parse-error", "fault.plan",
                 "entry \"" + std::string(entry) + "\" has no '='");
    }
    const std::string_view lhs = trim(entry.substr(0, eq));
    std::string_view rhs = trim(entry.substr(eq + 1));
    if (lhs == "seed") {
      std::uint64_t seed = 0;
      std::istringstream in{std::string(rhs)};
      in >> seed;
      if (in.fail() || !in.eof()) {
        return err("fault-plan-parse-error", "fault.plan",
                   "bad seed \"" + std::string(rhs) + "\"");
      }
      plan.seed = seed;
      continue;
    }
    FaultSpec fault;
    fault.site = std::string(lhs);
    if (std::find(kSites.begin(), kSites.end(), fault.site) == kSites.end()) {
      return err("fault-plan-unknown-site", "fault.plan",
                 "unknown site \"" + fault.site + "\"");
    }
    // rhs := KIND ['@'N] ['%'P] in either selector order.
    const std::size_t sel = rhs.find_first_of("@%");
    const std::string_view kind_text =
        trim(sel == std::string_view::npos ? rhs : rhs.substr(0, sel));
    if (!parse_kind(kind_text, &fault.kind)) {
      return err("fault-plan-parse-error", "fault.plan",
                 "unknown fault kind \"" + std::string(kind_text) + "\"");
    }
    std::string_view selectors =
        sel == std::string_view::npos ? std::string_view{} : rhs.substr(sel);
    while (!selectors.empty()) {
      const char tag = selectors.front();
      selectors.remove_prefix(1);
      std::size_t next = selectors.find_first_of("@%");
      const std::string value(trim(selectors.substr(0, next)));
      selectors = next == std::string_view::npos ? std::string_view{}
                                                 : selectors.substr(next);
      std::istringstream in{value};
      if (tag == '@') {
        in >> fault.nth;
        if (in.fail() || !in.eof() || fault.nth == 0) {
          return err("fault-plan-parse-error", "fault.plan",
                     "bad @selector \"" + value + "\" (want a 1-based index)");
        }
      } else {  // '%'
        in >> fault.probability;
        if (in.fail() || !in.eof() || fault.probability <= 0.0 ||
            fault.probability > 1.0) {
          return err("fault-plan-parse-error", "fault.plan",
                     "bad %selector \"" + value + "\" (want (0,1])");
        }
      }
    }
    // Last entry for a site wins, keeping plans one-spec-per-site canonical.
    auto existing = std::find_if(
        plan.specs.begin(), plan.specs.end(),
        [&](const FaultSpec& s) { return s.site == fault.site; });
    if (existing != plan.specs.end()) {
      *existing = fault;
    } else {
      plan.specs.push_back(fault);
    }
  }
  std::sort(plan.specs.begin(), plan.specs.end(),
            [](const FaultSpec& a, const FaultSpec& b) { return a.site < b.site; });
  return plan;
}

std::string to_spec(const FaultPlan& plan) {
  std::ostringstream out;
  bool first = true;
  if (plan.seed != 0) {
    out << "seed=" << plan.seed;
    first = false;
  }
  // specs are kept sorted by parse_plan/set_plan; emit in that order.
  for (const FaultSpec& spec : plan.specs) {
    if (!first) out << ';';
    first = false;
    out << spec.site << '=' << to_string(spec.kind);
    if (spec.nth != 0) out << '@' << spec.nth;
    if (spec.probability < 1.0) out << '%' << spec.probability;
  }
  return out.str();
}

void set_plan(const FaultPlan& plan) {
  auto state = std::make_shared<PlanState>();
  state->plan = plan;
  std::sort(state->plan.specs.begin(), state->plan.specs.end(),
            [](const FaultSpec& a, const FaultSpec& b) { return a.site < b.site; });
  {
    std::lock_guard<std::mutex> lock(g_plan_mutex);
    g_plan = std::move(state);
  }
  g_active.store(!plan.specs.empty(), std::memory_order_release);
  if (!plan.empty()) {
    PPACD_LOG_INFO("fault") << "fault plan installed: " << to_spec(plan);
  }
}

void clear_plan() {
  {
    std::lock_guard<std::mutex> lock(g_plan_mutex);
    g_plan.reset();
  }
  g_active.store(false, std::memory_order_release);
}

bool plan_active() { return g_active.load(std::memory_order_acquire); }

Expected<void, FlowError> install_env_plan() {
  const char* env = std::getenv("PPACD_FAULTS");
  if (env == nullptr || *env == '\0') return {};
  auto plan = parse_plan(env);
  if (!plan.has_value()) return Unexpected<FlowError>(std::move(plan).error());
  set_plan(plan.value());
  return {};
}

std::optional<FaultKind> trigger(std::string_view site, std::uint64_t key,
                                 std::uint32_t attempt) {
  if (!g_active.load(std::memory_order_acquire)) return std::nullopt;
  const std::shared_ptr<const PlanState> state = plan_snapshot();
  if (state == nullptr) return std::nullopt;
  const FaultPlan& plan = state->plan;
  const auto it = std::find_if(
      plan.specs.begin(), plan.specs.end(),
      [&](const FaultSpec& s) { return s.site == site; });
  if (it == plan.specs.end()) return std::nullopt;
  const FaultSpec& spec = *it;
  if (spec.nth != 0 && key + 1 != spec.nth) return std::nullopt;
  if (spec.probability < 1.0) {
    const std::uint64_t h =
        mix64(plan.seed ^ fnv1a(site) ^ mix64(key) ^ (std::uint64_t{attempt} << 32));
    const double unit =
        static_cast<double>(h >> 11) / static_cast<double>(1ULL << 53);
    if (unit >= spec.probability) return std::nullopt;
  }
  telemetry::metrics()
      .counter(std::string("fault.injected.") + to_string(spec.kind))
      .add(1);
  return spec.kind;
}

FlowError make_error(std::string_view site, FaultKind kind) {
  FlowError error;
  error.site = std::string(site);
  switch (kind) {
    case FaultKind::kError:
      error.code = kebab_site(site) + "-failed";
      break;
    case FaultKind::kTimeout:
      error.code = kebab_site(site) + "-timeout";
      break;
    case FaultKind::kPoison:
      error.code = "non-finite-result";
      break;
    case FaultKind::kAlloc:
      error.code = "alloc-failure";
      break;
  }
  error.message = std::string("injected ") + to_string(kind) + " fault";
  return error;
}

double poison_value() { return std::numeric_limits<double>::quiet_NaN(); }

void record_degradation(Degradation degradation) {
  std::string label = degradation.fallback;
  for (char& c : label) {
    if (c == '-' || c == '.') c = '_';
  }
  telemetry::metrics().counter("fault.degrade." + label).add(1);
  PPACD_LOG_WARN("fault") << degradation.site << ": " << degradation.error_code
                          << " -> " << degradation.fallback
                          << (degradation.detail.empty() ? "" : " (")
                          << degradation.detail
                          << (degradation.detail.empty() ? "" : ")");
  std::lock_guard<std::mutex> lock(g_log_mutex);
  g_degradations.push_back(std::move(degradation));
}

void record_error(FlowError error) {
  PPACD_LOG_ERROR("fault") << error.site << ": " << error.code
                           << (error.message.empty() ? "" : ": ")
                           << error.message;
  std::lock_guard<std::mutex> lock(g_log_mutex);
  g_errors.push_back(std::move(error));
}

std::vector<Degradation> degradation_log() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  return g_degradations;
}

std::vector<FlowError> error_log() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  return g_errors;
}

void reset_log() {
  std::lock_guard<std::mutex> lock(g_log_mutex);
  g_degradations.clear();
  g_errors.clear();
}

telemetry::Json errors_json() {
  telemetry::Json out = telemetry::Json::array();
  for (const FlowError& error : error_log()) {
    telemetry::Json entry = telemetry::Json::object();
    entry.set("code", error.code);
    entry.set("site", error.site);
    entry.set("message", error.message);
    out.push_back(std::move(entry));
  }
  return out;
}

telemetry::Json degradations_json() {
  telemetry::Json out = telemetry::Json::array();
  for (const Degradation& d : degradation_log()) {
    telemetry::Json entry = telemetry::Json::object();
    entry.set("site", d.site);
    entry.set("error_code", d.error_code);
    entry.set("fallback", d.fallback);
    if (!d.detail.empty()) entry.set("detail", d.detail);
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace ppacd::fault
