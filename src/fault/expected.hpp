/// \file expected.hpp
/// \brief `Expected<T, FlowError>`: the flow-wide structured error channel.
///
/// The flow (Alg. 1) chains six subsystems; before this header every mid-flow
/// failure was a PPACD_CHECK (abort in checked builds, log-and-corrupt in
/// release). `Expected` replaces those fatal paths with a value-or-error sum
/// type so `flow::try_run_*` can return a structured `FlowError` that the CLI
/// prints, the JSON run report serializes, and callers can recover from.
///
/// `FlowError::code` uses the same stable kebab-case convention as the
/// src/check violation codes (e.g. "sta-arrival-timeout", "alloc-failure");
/// DESIGN.md §12 lists every code the flow can produce. `site` names the
/// fault site (fault.hpp) or subsystem that raised the error.
///
/// Monadic helpers (`map`, `and_then`, `or_else`) mirror std::expected
/// (C++23) so migration is a typedef swap once the toolchain floor moves.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <variant>

#include "util/assert.hpp"

namespace ppacd::fault {

/// One structured flow error. Codes are stable kebab-case identifiers tests
/// and dashboards key on; messages are free-form human context.
struct FlowError {
  std::string code;     ///< stable kebab-case id, e.g. "route-maze-failed"
  std::string site;     ///< fault site / subsystem, e.g. "route.maze"
  std::string message;  ///< human-readable detail

  friend bool operator==(const FlowError& a, const FlowError& b) {
    return a.code == b.code && a.site == b.site && a.message == b.message;
  }
};

/// Wrapper distinguishing the error alternative in Expected's constructor
/// overload set (mirrors std::unexpected).
template <typename E>
class Unexpected {
 public:
  explicit Unexpected(E error) : error_(std::move(error)) {}
  const E& error() const& { return error_; }
  E&& error() && { return std::move(error_); }

 private:
  E error_;
};

/// Builds an Unexpected<FlowError> in one call:
///   return fault::err("sta-arrival-failed", "sta.arrival", "injected");
inline Unexpected<FlowError> err(std::string_view code, std::string_view site,
                                 std::string_view message = {}) {
  return Unexpected<FlowError>(
      FlowError{std::string(code), std::string(site), std::string(message)});
}

template <typename T, typename E = FlowError>
class [[nodiscard]] Expected;

namespace detail {
template <typename U>
struct is_expected : std::false_type {};
template <typename U, typename G>
struct is_expected<Expected<U, G>> : std::true_type {};
}  // namespace detail

/// Value-or-error sum type. Holds exactly one of T or E; the error
/// alternative is reachable only through Unexpected so `Expected<int>(3)`
/// and `Expected<int>(err(...))` never collide.
template <typename T, typename E>
class [[nodiscard]] Expected {
 public:
  using value_type = T;
  using error_type = E;

  Expected(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Expected(Unexpected<E> unexpected)
      : state_(std::in_place_index<1>, std::move(unexpected).error()) {}

  bool has_value() const { return state_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  /// Precondition: has_value(). Checked: a violated precondition aborts in
  /// checked builds and throws std::bad_variant_access in release (never UB).
  T& value() & {
    PPACD_CHECK(has_value(), "Expected::value() on error: " << error().code);
    return std::get<0>(state_);
  }
  const T& value() const& {
    PPACD_CHECK(has_value(), "Expected::value() on error: " << error().code);
    return std::get<0>(state_);
  }
  T&& value() && {
    PPACD_CHECK(has_value(), "Expected::value() on error: " << error().code);
    return std::get<0>(std::move(state_));
  }

  /// Precondition: !has_value() (same checking policy as value()).
  const E& error() const& {
    PPACD_DCHECK(!has_value(), "Expected::error() on value");
    return std::get<1>(state_);
  }
  E&& error() && {
    PPACD_DCHECK(!has_value(), "Expected::error() on value");
    return std::get<1>(std::move(state_));
  }

  T value_or(T fallback) const& {
    return has_value() ? std::get<0>(state_) : std::move(fallback);
  }
  T value_or(T fallback) && {
    return has_value() ? std::get<0>(std::move(state_)) : std::move(fallback);
  }

  /// Applies `fn` to the value, passing errors through unchanged. `fn`
  /// returns a plain value; use and_then for fallible continuations.
  template <typename Fn>
  auto map(Fn&& fn) const& -> Expected<std::invoke_result_t<Fn, const T&>, E> {
    using U = std::invoke_result_t<Fn, const T&>;
    if (has_value()) return Expected<U, E>(fn(std::get<0>(state_)));
    return Expected<U, E>(Unexpected<E>(std::get<1>(state_)));
  }

  /// Chains a fallible continuation: `fn(value)` must itself return an
  /// Expected<U, E>; errors short-circuit.
  template <typename Fn>
  auto and_then(Fn&& fn) const& -> std::invoke_result_t<Fn, const T&> {
    using Ret = std::invoke_result_t<Fn, const T&>;
    static_assert(detail::is_expected<Ret>::value,
                  "and_then continuation must return an Expected");
    static_assert(std::is_same_v<typename Ret::error_type, E>,
                  "and_then continuation must keep the error type");
    if (has_value()) return fn(std::get<0>(state_));
    return Ret(Unexpected<E>(std::get<1>(state_)));
  }

  /// Error-path continuation: `fn(error)` returns an Expected<T, E> used as
  /// the recovery result; values pass through unchanged.
  template <typename Fn>
  Expected or_else(Fn&& fn) const& {
    if (has_value()) return *this;
    return fn(std::get<1>(state_));
  }

  Expected(const Expected&) = default;
  Expected(Expected&&) = default;
  Expected& operator=(const Expected&) = default;
  Expected& operator=(Expected&&) = default;

 private:
  std::variant<T, E> state_;
};

/// Expected<void>: success carries no value; the monadic helpers take and
/// produce nullary continuations.
template <typename E>
class [[nodiscard]] Expected<void, E> {
 public:
  using value_type = void;
  using error_type = E;

  Expected() = default;
  Expected(Unexpected<E> unexpected) : error_(std::move(unexpected).error()) {}

  bool has_value() const { return !error_.has_value(); }
  explicit operator bool() const { return has_value(); }

  const E& error() const& {
    PPACD_DCHECK(!has_value(), "Expected<void>::error() on value");
    return *error_;
  }

  template <typename Fn>
  auto map(Fn&& fn) const -> Expected<std::invoke_result_t<Fn>, E> {
    using U = std::invoke_result_t<Fn>;
    if (!has_value()) return Expected<U, E>(Unexpected<E>(*error_));
    if constexpr (std::is_void_v<U>) {
      fn();
      return Expected<U, E>();
    } else {
      return Expected<U, E>(fn());
    }
  }

  template <typename Fn>
  auto and_then(Fn&& fn) const -> std::invoke_result_t<Fn> {
    using Ret = std::invoke_result_t<Fn>;
    static_assert(detail::is_expected<Ret>::value,
                  "and_then continuation must return an Expected");
    if (has_value()) return fn();
    return Ret(Unexpected<E>(*error_));
  }

  template <typename Fn>
  Expected or_else(Fn&& fn) const {
    if (has_value()) return *this;
    return fn(*error_);
  }

 private:
  std::optional<E> error_;
};

}  // namespace ppacd::fault
