#include "vpr/vpr.hpp"

#include <algorithm>
#include "util/assert.hpp"
#include <cmath>
#include <limits>
#include <new>
#include <optional>
#include <sstream>

#include "exec/exec.hpp"
#include "observe/observe.hpp"
#include "place/floorplan.hpp"
#include "telemetry/telemetry.hpp"
#include "util/logging.hpp"

namespace ppacd::vpr {

std::vector<cluster::ClusterShape> candidate_shapes(const VprOptions& options) {
  std::vector<cluster::ClusterShape> shapes;
  shapes.reserve(options.aspect_ratios.size() * options.utilizations.size());
  for (const double ar : options.aspect_ratios) {
    for (const double util : options.utilizations) {
      cluster::ClusterShape shape;
      shape.aspect_ratio = ar;
      shape.utilization = util;
      shapes.push_back(shape);
    }
  }
  return shapes;
}

namespace {

/// Shared tail of the virtual P&R: place, route, score Eq. 4/5.
ShapeCandidate score_virtual_die(netlist::Netlist& virtual_design,
                                 place::PlaceModel model,
                                 const place::Floorplan& fp,
                                 const cluster::ClusterShape& shape,
                                 const VprOptions& options,
                                 std::vector<geom::Point>& positions_scratch);

/// Evaluates one shape on `scratch`, an existing copy of the sub-netlist.
/// Only port positions change per shape (place_ports_on_boundary rewrites
/// every port), so the same scratch copy serves all candidates — no
/// per-candidate deep copy of the netlist.
ShapeCandidate evaluate_shape_inplace(netlist::Netlist& scratch,
                                      const cluster::ClusterShape& shape,
                                      const VprOptions& options,
                                      std::vector<geom::Point>& positions_scratch) {
  // Virtual die at this shape; IO ports on its boundary (footnote 4).
  place::FloorplanOptions fpo;
  fpo.utilization = shape.utilization;
  fpo.aspect_ratio = shape.aspect_ratio;
  const place::Floorplan fp = place::Floorplan::create(
      scratch.total_cell_area(), scratch.library().row_height_um(), fpo);
  place::place_ports_on_boundary(scratch, fp);
  place::PlaceModel model = place::make_place_model(scratch, fp);
  return score_virtual_die(scratch, std::move(model), fp, shape, options,
                           positions_scratch);
}

}  // namespace

ShapeCandidate evaluate_shape(const netlist::Netlist& subnetlist,
                              const cluster::ClusterShape& shape,
                              const VprOptions& options) {
  netlist::Netlist virtual_design = subnetlist;
  std::vector<geom::Point> positions;
  return evaluate_shape_inplace(virtual_design, shape, options, positions);
}

ShapeCandidate evaluate_l_shape(const netlist::Netlist& subnetlist,
                                const cluster::ClusterShape& shape,
                                double notch_fraction,
                                const VprOptions& options) {
  PPACD_CHECK(notch_fraction > 0.0 && notch_fraction < 0.5,
              "notch fraction " << notch_fraction);
  netlist::Netlist virtual_design = subnetlist;
  // Gross area must leave the usable area intact after the notch.
  place::FloorplanOptions fpo;
  fpo.utilization = shape.utilization * (1.0 - notch_fraction);
  fpo.aspect_ratio = shape.aspect_ratio;
  const place::Floorplan fp = place::Floorplan::create(
      virtual_design.total_cell_area(), virtual_design.library().row_height_um(),
      fpo);
  place::place_ports_on_boundary(virtual_design, fp);
  place::PlaceModel model = place::make_place_model(virtual_design, fp);

  // Notch blockage in the top-right corner, sqrt(f) of each dimension so
  // the notch covers `notch_fraction` of the gross area.
  const double frac = std::sqrt(notch_fraction);
  place::PlaceObject notch;
  notch.blockage = true;
  notch.fixed = true;
  notch.width_um = fp.core.width() * frac;
  notch.height_um = fp.core.height() * frac;
  notch.fixed_position = {fp.core.ux - notch.width_um * 0.5,
                          fp.core.uy - notch.height_um * 0.5};
  model.objects.push_back(notch);

  std::vector<geom::Point> positions;
  return score_virtual_die(virtual_design, std::move(model), fp, shape, options,
                           positions);
}

namespace {

ShapeCandidate score_virtual_die(netlist::Netlist& virtual_design,
                                 place::PlaceModel model,
                                 const place::Floorplan& fp,
                                 const cluster::ClusterShape& shape,
                                 const VprOptions& options,
                                 std::vector<geom::Point>& positions_scratch) {
  ShapeCandidate candidate;
  candidate.shape = shape;

  place::GlobalPlacer placer(model, options.placer);
  const place::PlaceResult placed = placer.run();
  place::cell_positions(virtual_design, placed.placement, positions_scratch);
  const std::vector<geom::Point>& positions = positions_scratch;

  route::GlobalRouter router(virtual_design, positions, fp.core, options.router);
  auto routed_or = router.try_run(fault::DegradePolicy{});
  if (!routed_or.has_value()) {
    // Nested routing failure (e.g. injected alloc): fail this candidate
    // instead of the whole sweep.
    candidate.total_cost = std::numeric_limits<double>::infinity();
    return candidate;
  }
  const route::RouteResult routed = std::move(routed_or).value();

  // Eq. 4: average net HPWL normalized by the virtual die half-perimeter.
  double hpwl_sum = 0.0;
  std::size_t net_count = 0;
  for (std::size_t ni = 0; ni < virtual_design.net_count(); ++ni) {
    const netlist::Net& net = virtual_design.net(static_cast<netlist::NetId>(ni));
    if (net.pins.size() < 2 || net.is_clock) continue;
    geom::BBox box;
    for (const netlist::PinId pid : net.pins) {
      const netlist::Pin& pin = virtual_design.pin(pid);
      box.expand(pin.kind == netlist::PinKind::kTopPort
                     ? virtual_design.port(pin.port).position
                     : positions[pin.cell.index()]);
    }
    hpwl_sum += box.half_perimeter();
    ++net_count;
  }
  const double hpwl_avg =
      net_count > 0 ? hpwl_sum / static_cast<double>(net_count) : 0.0;
  candidate.hpwl_cost = hpwl_avg / (fp.core.width() + fp.core.height());

  // Eq. 5: mean congestion over the top X% GCells.
  candidate.congestion_cost = routed.top_congestion(options.top_percent);

  candidate.total_cost =
      candidate.hpwl_cost + options.delta * candidate.congestion_cost;
  return candidate;
}

}  // namespace

VprResult run_vpr(const netlist::Netlist& subnetlist, const VprOptions& options) {
  VprResult result;
  const auto shapes = candidate_shapes(options);
  result.candidates.assign(shapes.size(), ShapeCandidate{});

  // Parallel across candidates; each lane copies the sub-netlist once and
  // reuses it for every candidate it evaluates (only ports differ per shape).
  // When nested under the cluster-parallel loop in select_cluster_shapes the
  // chunks run inline on the worker, so this costs one copy per cluster.
  struct LaneScratch {
    std::optional<netlist::Netlist> nl;
    std::vector<geom::Point> positions;
  };
  std::vector<LaneScratch> scratch(exec::worker_slots());
  exec::parallel_for(0, shapes.size(), /*grain=*/1, [&](std::size_t i) {
    // Fault site `vpr.shape_eval`, keyed by candidate index: failed
    // candidates stay non-finite and drop out of best-index selection.
    if (const auto kind = fault::trigger("vpr.shape_eval", i)) {
      result.candidates[i].shape = shapes[i];
      switch (*kind) {
        case fault::FaultKind::kAlloc:
          throw std::bad_alloc();
        case fault::FaultKind::kPoison:
          result.candidates[i].total_cost = fault::poison_value();
          return;
        default:  // error / timeout: candidate eval failed
          result.candidates[i].total_cost =
              std::numeric_limits<double>::infinity();
          return;
      }
    }
    LaneScratch& slot = scratch[exec::this_worker_slot()];
    if (!slot.nl.has_value()) slot.nl.emplace(subnetlist);
    result.candidates[i] =
        evaluate_shape_inplace(*slot.nl, shapes[i], options, slot.positions);
  });

  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < result.candidates.size(); ++i) {
    const ShapeCandidate& candidate = result.candidates[i];
    PPACD_HIST("vpr.candidate.total_cost", candidate.total_cost);
    if (std::isfinite(candidate.total_cost) && candidate.total_cost < best) {
      best = candidate.total_cost;
      result.best_index = i;
    }
  }
  PPACD_COUNT("vpr.shapes.evaluated", shapes.size());
  return result;
}

fault::Expected<VprResult, fault::FlowError> try_run_vpr(
    const netlist::Netlist& subnetlist, const VprOptions& options) {
  try {
    return run_vpr(subnetlist, options);
  } catch (const std::bad_alloc&) {
    return fault::Unexpected<fault::FlowError>(
        fault::make_error("vpr.shape_eval", fault::FaultKind::kAlloc));
  }
}

namespace {

/// Per-cluster outcome collected inside the parallel shaping loop and
/// turned into degradation/error records serially afterwards, so the log
/// order is independent of thread scheduling.
struct ClusterOutcome {
  bool ml_fell_back = false;      ///< predictor failed, exact V-P&R used
  bool shape_defaulted = false;   ///< sweep failed, default shape kept
  bool fatal = false;             ///< policy forbade the fallback
  fault::FlowError ml_error;
  fault::FlowError shape_error;
};

std::string cluster_detail(cluster::ClusterId ci) {
  std::ostringstream out;
  out << "cluster " << ci;
  return out.str();
}

}  // namespace

fault::Expected<ShapeSelectionStats, fault::FlowError> try_select_cluster_shapes(
    const netlist::Netlist& nl, cluster::ClusteredNetlist& clustered,
    const VprOptions& options, const ShapeCostPredictor* predictor,
    const fault::DegradePolicy& policy) {
  ShapeSelectionStats stats;
  const auto shapes = candidate_shapes(options);

  // Partition serially (cheap, keeps skip accounting deterministic), then
  // shape eligible clusters in parallel: set_cluster_shape touches only
  // clusters[ci], and each iteration works on its own extracted sub-netlist.
  std::vector<cluster::ClusterId> eligible;
  for (const cluster::ClusterId ci : clustered.cluster_ids()) {
    if (static_cast<int>(clustered.clusters[ci].cells.size()) <=
        options.min_cluster_instances) {
      ++stats.clusters_skipped;
    } else {
      eligible.push_back(ci);
    }
  }
  stats.clusters_shaped = static_cast<int>(eligible.size());

  // Flight recorder: shape-sweep candidate scores. The series is created
  // here (serial); workers emit with key (series, eligible index k,
  // candidate i), which is unique and schedule-independent, so the merged
  // stream is identical at any thread count.
  const bool observing = observe::active();
  const std::int32_t obs_series =
      observing ? observe::recorder().begin_series(observe::Stream::kVprCandidate)
                : -1;

  std::vector<double> runs_per_cluster(eligible.size(), 0.0);
  std::vector<ClusterOutcome> outcomes(eligible.size());
  exec::parallel_for(0, eligible.size(), /*grain=*/1, [&](std::size_t k) {
    const cluster::ClusterId ci = eligible[k];
    ClusterOutcome& outcome = outcomes[k];
    const cluster::Cluster& cluster_ref = clustered.clusters[ci];
    PPACD_SPAN(cluster_span, "vpr.cluster");
    PPACD_SPAN_ATTR(cluster_span, "cluster", ci.value());
    PPACD_SPAN_ATTR(cluster_span, "cells", cluster_ref.cells.size());
    const netlist::SubNetlist sub = netlist::extract_subnetlist(nl, cluster_ref.cells);

    std::size_t best_index = kInvalidShapeIndex;
    bool need_exact = predictor == nullptr;
    if (predictor != nullptr) {
      // Fault site `ml.predict`, keyed by eligible-cluster index. A failed,
      // throwing, or out-of-distribution prediction falls back to exact
      // V-P&R (the paper's own fallback) under policy.ml_fallback_to_vpr.
      std::vector<double> predicted;
      bool ml_ok = true;
      if (const auto kind = fault::trigger("ml.predict", k)) {
        ml_ok = false;
        outcome.ml_error = fault::make_error("ml.predict", *kind);
        if (*kind == fault::FaultKind::kPoison) {
          // Poison is delivered through the data path: a prediction of all
          // NaNs that the OOD guard below must catch.
          predicted.assign(shapes.size(), fault::poison_value());
          ml_ok = true;
        }
      } else {
        try {
          predicted = (*predictor)(sub.netlist, shapes);
        } catch (const std::bad_alloc&) {
          ml_ok = false;
          outcome.ml_error =
              fault::make_error("ml.predict", fault::FaultKind::kAlloc);
        } catch (const std::exception& e) {
          ml_ok = false;
          outcome.ml_error.code = "ml-predict-failed";
          outcome.ml_error.site = "ml.predict";
          outcome.ml_error.message = e.what();
        }
      }
      if (ml_ok && predicted.size() != shapes.size()) {
        ml_ok = false;
        outcome.ml_error.code = "ml-predict-ood";
        outcome.ml_error.site = "ml.predict";
        std::ostringstream msg;
        msg << "predictor returned " << predicted.size() << " costs for "
            << shapes.size() << " shapes";
        outcome.ml_error.message = msg.str();
      }
      if (ml_ok && std::any_of(predicted.begin(), predicted.end(),
                               [](double c) { return !std::isfinite(c); })) {
        ml_ok = false;
        if (outcome.ml_error.code.empty()) {
          outcome.ml_error.code = "non-finite-result";
          outcome.ml_error.site = "ml.predict";
          outcome.ml_error.message = "predicted cost is not finite";
        }
      }
      if (ml_ok) {
        best_index = static_cast<std::size_t>(
            std::min_element(predicted.begin(), predicted.end()) -
            predicted.begin());
        PPACD_COUNT("vpr.shapes.ml_predicted", predicted.size());
      } else if (policy.ml_fallback_to_vpr) {
        outcome.ml_fell_back = true;
        need_exact = true;
      } else {
        outcome.fatal = true;
        return;
      }
    }
    if (need_exact) {
      auto vpr = try_run_vpr(sub.netlist, options);
      if (vpr.has_value()) {
        best_index = vpr.value().best_index;
        runs_per_cluster[k] =
            static_cast<double>(vpr.value().candidates.size());
        if (observing && observe::recorder().want(static_cast<std::int64_t>(k))) {
          const auto& candidates = vpr.value().candidates;
          for (std::size_t i = 0; i < candidates.size(); ++i) {
            observe::recorder().record(
                observe::Stream::kVprCandidate, obs_series,
                static_cast<std::int64_t>(k), static_cast<std::int64_t>(i),
                {candidates[i].total_cost, candidates[i].hpwl_cost,
                 candidates[i].congestion_cost,
                 i == best_index ? 1.0 : 0.0});
          }
        }
        if (best_index == kInvalidShapeIndex) {
          outcome.shape_error.code = "vpr-shape-eval-failed";
          outcome.shape_error.site = "vpr.shape_eval";
          outcome.shape_error.message = "no finite-cost shape candidate";
        }
      } else {
        outcome.shape_error = std::move(vpr).error();
      }
    }
    if (best_index != kInvalidShapeIndex) {
      cluster::set_cluster_shape(clustered, ci, shapes[best_index]);
    } else if (policy.shape_fallback_default) {
      // Keep the default shape (AR 1.0, utilization 0.90) for this cluster.
      outcome.shape_defaulted = true;
      cluster::set_cluster_shape(clustered, ci, cluster::ClusterShape{});
    } else {
      outcome.fatal = true;
    }
  });
  // Ordered accumulation and degradation recording: independent of which
  // lane ran which cluster.
  for (const double runs : runs_per_cluster) stats.vpr_runs += runs;
  for (std::size_t k = 0; k < outcomes.size(); ++k) {
    ClusterOutcome& outcome = outcomes[k];
    if (outcome.fatal) {
      fault::FlowError error = outcome.shape_error.code.empty()
                                   ? std::move(outcome.ml_error)
                                   : std::move(outcome.shape_error);
      return fault::Unexpected<fault::FlowError>(std::move(error));
    }
    if (outcome.ml_fell_back) {
      ++stats.ml_fallbacks;
      fault::record_degradation({"ml.predict", outcome.ml_error.code,
                                 "vpr-exact", cluster_detail(eligible[k])});
    }
    if (outcome.shape_defaulted) {
      ++stats.clusters_defaulted;
      fault::record_degradation({"vpr.shape_eval", outcome.shape_error.code,
                                 "default-shape", cluster_detail(eligible[k])});
    }
  }
  PPACD_COUNT("vpr.clusters.shaped", stats.clusters_shaped);
  PPACD_COUNT("vpr.clusters.skipped", stats.clusters_skipped);
  PPACD_LOG_DEBUG("vpr") << nl.name() << ": shaped " << stats.clusters_shaped
                         << " clusters (" << stats.clusters_skipped
                         << " below threshold)";
  return stats;
}

ShapeSelectionStats select_cluster_shapes(const netlist::Netlist& nl,
                                          cluster::ClusteredNetlist& clustered,
                                          const VprOptions& options,
                                          const ShapeCostPredictor* predictor) {
  auto stats = try_select_cluster_shapes(nl, clustered, options, predictor,
                                         fault::DegradePolicy{});
  PPACD_CHECK(stats.has_value(),
              "shape selection failed: " << stats.error().code);
  return stats.value();
}

}  // namespace ppacd::vpr
