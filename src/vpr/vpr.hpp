/// \file vpr.hpp
/// \brief Virtualized P&R (Section 3.2, Figure 3) and cluster shape
/// selection.
///
/// For a cluster's induced sub-netlist, V-P&R sweeps the paper's 20 shape
/// candidates (aspect ratio in [0.75, 1.75] step 0.25; utilization in
/// [0.75, 0.90] step 0.05), and for each candidate:
///   1. creates a virtual die at that shape and places the sub-netlist's IO
///      ports on its boundary,
///   2. runs (light) global placement and global routing,
///   3. scores Cost_HPWL (Eq. 4) and Cost_Congestion (Eq. 5), combined as
///      TotalCost = Cost_HPWL + delta * Cost_Congestion.
/// The best-TotalCost candidate becomes the cluster's .lef shape.
///
/// An optional predictor callback replaces step 1-3 with a model estimate
/// (the ML acceleration of Section 3.2); see ppacd::ml for the GNN that
/// implements it.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "cluster/clustered_netlist.hpp"
#include "fault/expected.hpp"
#include "fault/fault.hpp"
#include "netlist/netlist.hpp"
#include "netlist/subnetlist.hpp"
#include "place/global_placer.hpp"
#include "route/global_router.hpp"
#include "util/assert.hpp"

namespace ppacd::vpr {

/// Sentinel best_index when no candidate has a finite TotalCost (empty
/// candidate list or every run diverged). Callers must not index with it.
inline constexpr std::size_t kInvalidShapeIndex = static_cast<std::size_t>(-1);

struct VprOptions {
  std::vector<double> aspect_ratios = {0.75, 1.0, 1.25, 1.5, 1.75};
  std::vector<double> utilizations = {0.75, 0.80, 0.85, 0.90};
  double delta = 0.01;         ///< TotalCost congestion weight
  double top_percent = 10.0;   ///< X of Eq. 5
  /// Only clusters with more instances than this get V-P&R (footnote 3;
  /// the paper uses 200 on full-size designs).
  int min_cluster_instances = 200;
  /// Light P&R settings for the virtual die runs.
  place::GlobalPlacerOptions placer = light_placer();
  route::RouteOptions router;

  static place::GlobalPlacerOptions light_placer() {
    place::GlobalPlacerOptions options;
    options.max_iterations = 12;
    options.min_iterations = 3;
    options.cg_max_iterations = 30;
    return options;
  }
};

/// One evaluated shape candidate.
struct ShapeCandidate {
  cluster::ClusterShape shape;
  double hpwl_cost = 0.0;        ///< Eq. 4
  double congestion_cost = 0.0;  ///< Eq. 5
  double total_cost = 0.0;       ///< Eq. 4 + delta * Eq. 5
};

struct VprResult {
  std::vector<ShapeCandidate> candidates;  ///< all evaluated shapes
  /// Index of the lowest finite-TotalCost candidate, or kInvalidShapeIndex.
  std::size_t best_index = kInvalidShapeIndex;

  bool has_best() const { return best_index != kInvalidShapeIndex; }
  const ShapeCandidate& best() const {
    PPACD_CHECK(has_best(), "V-P&R produced no finite-cost candidate");
    return candidates.at(best_index);
  }
};

/// The 20 candidate shapes in sweep order.
std::vector<cluster::ClusterShape> candidate_shapes(const VprOptions& options);

/// Evaluates one (sub-netlist, shape) pair through virtual P&R and returns
/// the candidate record. The sub-netlist is copied internally (ports are
/// re-placed per shape).
ShapeCandidate evaluate_shape(const netlist::Netlist& subnetlist,
                              const cluster::ClusterShape& shape,
                              const VprOptions& options);

/// Full V-P&R sweep over all candidates for one sub-netlist. Candidates
/// whose evaluation fails (injected `vpr.shape_eval` fault or non-finite
/// score) are left at infinite/NaN cost and excluded from best_index.
VprResult run_vpr(const netlist::Netlist& subnetlist, const VprOptions& options);

/// Fallible form of run_vpr: converts allocation failure during the sweep
/// into a structured `alloc-failure` error instead of propagating
/// std::bad_alloc.
[[nodiscard]] fault::Expected<VprResult, fault::FlowError> try_run_vpr(
    const netlist::Netlist& subnetlist, const VprOptions& options);

/// Paper section 5 future work: L-shaped cluster footprints. Evaluates the
/// sub-netlist on a virtual die whose bounding box is enlarged so that,
/// after carving a rectangular notch of `notch_fraction` of the gross area
/// out of the top-right corner (modeled as a placement blockage), the
/// usable area still meets the candidate utilization. Costs are Eq. 4/5 on
/// the gross die.
ShapeCandidate evaluate_l_shape(const netlist::Netlist& subnetlist,
                                const cluster::ClusterShape& shape,
                                double notch_fraction,
                                const VprOptions& options);

/// Predictor signature for ML acceleration: returns the predicted TotalCost
/// of every candidate shape for the given sub-netlist.
using ShapeCostPredictor = std::function<std::vector<double>(
    const netlist::Netlist& subnetlist,
    const std::vector<cluster::ClusterShape>& candidates)>;

/// Statistics from shape selection over a clustered netlist.
struct ShapeSelectionStats {
  int clusters_shaped = 0;    ///< clusters above the instance threshold
  int clusters_skipped = 0;
  double vpr_runs = 0;        ///< virtual P&R executions performed
  /// Clusters where the ML predictor failed (or returned an
  /// out-of-distribution result) and exact V-P&R was used instead.
  int ml_fallbacks = 0;
  /// Clusters whose shape sweep produced no finite candidate and that kept
  /// the default shape (AR 1.0, utilization 0.90).
  int clusters_defaulted = 0;
};

/// Assigns shapes to every qualifying cluster of `clustered` (Alg. 1
/// line 12-13): with `predictor` null, exact V-P&R; otherwise the predictor
/// picks the best candidate (ML-accelerated V-P&R). Skipped clusters keep
/// their default shape.
///
/// Degradation: a predictor that throws, times out, or returns an
/// out-of-distribution result (wrong count / non-finite costs) falls back
/// to exact V-P&R when `policy.ml_fallback_to_vpr`; a sweep with no finite
/// candidate keeps the default shape when `policy.shape_fallback_default`.
/// Each fallback is recorded via fault::record_degradation. With the
/// corresponding policy disabled the failure propagates as a FlowError.
[[nodiscard]] fault::Expected<ShapeSelectionStats, fault::FlowError>
try_select_cluster_shapes(
    const netlist::Netlist& netlist, cluster::ClusteredNetlist& clustered,
    const VprOptions& options, const ShapeCostPredictor* predictor,
    const fault::DegradePolicy& policy);

/// Legacy entry point: try_select_cluster_shapes with the default (fully
/// permissive) DegradePolicy; asserts on structural errors.
ShapeSelectionStats select_cluster_shapes(const netlist::Netlist& netlist,
                                          cluster::ClusteredNetlist& clustered,
                                          const VprOptions& options,
                                          const ShapeCostPredictor* predictor);

}  // namespace ppacd::vpr
