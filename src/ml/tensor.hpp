/// \file tensor.hpp
/// \brief Minimal dense matrix type and kernels for the GNN (PyTorch
/// Geometric substitute). Everything is double-precision and row-major;
/// kernels are written cache-friendly (i-k-j) since training the Fig. 4
/// model from scratch is the dominant cost of bench_model_eval.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ppacd::ml {

/// Row-major matrix.
struct Matrix {
  int rows = 0;
  int cols = 0;
  std::vector<double> data;

  Matrix() = default;
  Matrix(int r, int c)
      : rows(r), cols(c),
        data(static_cast<std::size_t>(r) * static_cast<std::size_t>(c), 0.0) {}

  double& at(int r, int c) { return data[index(r, c)]; }
  double at(int r, int c) const { return data[index(r, c)]; }
  double* row(int r) { return data.data() + index(r, 0); }
  const double* row(int r) const { return data.data() + index(r, 0); }

  std::size_t index(int r, int c) const {
    return static_cast<std::size_t>(r) * static_cast<std::size_t>(cols) +
           static_cast<std::size_t>(c);
  }

  void zero() { std::fill(data.begin(), data.end(), 0.0); }
};

/// Non-owning row-major matrix view. Lets a kernel read a buffer that
/// already exists elsewhere (e.g. a Param's weight values viewed with the
/// layer's dimensions) without materializing a Matrix copy per call.
struct MatrixView {
  int rows = 0;
  int cols = 0;
  const double* data = nullptr;

  MatrixView() = default;
  MatrixView(const Matrix& m) : rows(m.rows), cols(m.cols), data(m.data.data()) {}
  MatrixView(int r, int c, const double* d) : rows(r), cols(c), data(d) {}

  const double* row(int r) const {
    return data + static_cast<std::size_t>(r) * static_cast<std::size_t>(cols);
  }
};

/// out = a * b  (a: n x k, b: k x m).
void matmul(const Matrix& a, const MatrixView& b, Matrix& out);

/// out = a^T * b  (a: k x n, b: k x m -> out n x m).
void matmul_at_b(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a * b^T  (a: n x k, b: m x k -> out n x m).
void matmul_a_bt(const Matrix& a, const MatrixView& b, Matrix& out);

/// Sparse symmetric adjacency (per-row (col, weight)) times dense matrix.
using SparseRows = std::vector<std::vector<std::pair<std::int32_t, double>>>;
void spmm(const SparseRows& adjacency, const Matrix& x, Matrix& out);

/// Adjacency in CSR form with SoA lanes (DESIGN.md §15): row r's entries
/// occupy slots [offsets[r], offsets[r+1]) of the column-id and weight
/// lanes, in the same order the per-row vectors held them, so folds over a
/// row are bit-identical to the SparseRows form while the whole structure
/// is three flat arrays instead of one allocation per row.
struct SparseAdj {
  std::vector<std::size_t> offsets;    ///< rows()+1 entries
  std::vector<std::int32_t> cols;
  std::vector<double> weights;

  int rows() const {
    return offsets.empty() ? 0 : static_cast<int>(offsets.size()) - 1;
  }
  /// Rebuilds from per-row vectors, preserving entry order. Capacity is
  /// retained across calls.
  void from_rows(const SparseRows& rows);
};

/// CSR spmm, row-chunked: rows write disjoint output and read only fully
/// built inputs, so the result is bit-identical for any thread count.
void spmm(const SparseAdj& adjacency, const Matrix& x, Matrix& out);

/// ReLU forward in place; returns mask usable for backward.
void relu_inplace(Matrix& x);
/// dX = dY where Y > 0 (Y is the post-ReLU activation).
void relu_backward(const Matrix& activated, Matrix& grad);

}  // namespace ppacd::ml
