/// \file trainer.hpp
/// \brief Training and evaluation of the TotalCost model (Section 4.4), and
/// the adapter that plugs the trained model into V-P&R shape selection as
/// the "ML-accelerated" path.
#pragma once

#include <memory>

#include "ml/dataset.hpp"
#include "ml/gnn.hpp"
#include "vpr/vpr.hpp"

namespace ppacd::ml {

struct TrainOptions {
  int epochs = 20;
  int batch_size = 16;
  double learning_rate = 1e-3;
  double train_fraction = 0.72;  ///< matches the paper's 22700/31500
  double val_fraction = 0.18;    ///< 5600/31500; the rest is test
  std::uint64_t seed = 5;
};

struct SplitMetrics {
  double mae = 0.0;
  double r2 = 0.0;
  std::size_t sample_count = 0;
};

/// Label statistics (the paper reports range [0.564, 2.96], mean 1.703,
/// stddev 0.727 for its dataset).
struct LabelStats {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};

/// A trained model plus its feature scaler.
class TrainedModel {
 public:
  /// `label_mean`/`label_std`: the target standardization applied during
  /// training; predictions are mapped back to raw TotalCost units.
  TrainedModel(std::shared_ptr<TotalCostModel> model,
               std::vector<double> feature_mean, std::vector<double> feature_std,
               double label_mean, double label_std);

  /// Predicts TotalCost for one cluster graph at one candidate shape.
  double predict(const features::ClusterGraph& graph,
                 const cluster::ClusterShape& shape) const;

  /// Adapter for vpr::select_cluster_shapes: extracts features from the
  /// sub-netlist and scores every candidate with the model.
  vpr::ShapeCostPredictor predictor(
      const features::FeatureOptions& feature_options) const;

  // Accessors for serialization (ml/serialize.hpp).
  const std::shared_ptr<TotalCostModel>& network() const { return model_; }
  const std::vector<double>& feature_mean() const { return mean_; }
  const std::vector<double>& feature_std() const { return std_; }
  double label_mean() const { return label_mean_; }
  double label_std() const { return label_std_; }

 private:
  Matrix standardized_features(const features::ClusterGraph& graph,
                               const cluster::ClusterShape& shape) const;

  std::shared_ptr<TotalCostModel> model_;
  std::vector<double> mean_;
  std::vector<double> std_;
  double label_mean_ = 0.0;
  double label_std_ = 1.0;
};

struct TrainResult {
  std::shared_ptr<TrainedModel> model;
  SplitMetrics train;
  SplitMetrics val;
  SplitMetrics test;
  LabelStats labels;
  int epochs_run = 0;
};

/// Trains the Fig. 4 model on `dataset` with MSE loss and Adam, splitting by
/// cluster, and evaluates MAE/R2 on all three splits.
TrainResult train_total_cost_model(const Dataset& dataset,
                                   const TrainOptions& options);

}  // namespace ppacd::ml
