#include "ml/gnn.hpp"

#include <cassert>

namespace ppacd::ml {

Matrix ConvBlock::forward(const SparseAdj& adj, const Matrix& x, bool training,
                          Cache& cache) {
  cache.x_in = x;
  spmm(adj, x, cache.propagated);
  Matrix z = linear_.forward(cache.propagated);
  Matrix normed = bn_.forward(z, training, cache.bn);
  relu_inplace(normed);
  cache.activated = normed;
  if (skip_) {
    for (std::size_t i = 0; i < normed.data.size(); ++i) {
      normed.data[i] += x.data[i];
    }
  }
  return normed;
}

Matrix ConvBlock::backward(const SparseAdj& adj, const Cache& cache,
                           const Matrix& grad_out) {
  Matrix grad_act = grad_out;
  relu_backward(cache.activated, grad_act);
  Matrix grad_z = bn_.backward(cache.bn, grad_act);
  Matrix grad_propagated = linear_.backward(cache.propagated, grad_z);
  Matrix grad_x;
  spmm(adj, grad_propagated, grad_x);  // A_hat is symmetric
  if (skip_) {
    for (std::size_t i = 0; i < grad_x.data.size(); ++i) {
      grad_x.data[i] += grad_out.data[i];
    }
  }
  return grad_x;
}

void ConvBlock::collect_params(std::vector<Param*>& out) {
  for (Param* p : linear_.params()) out.push_back(p);
  for (Param* p : bn_.params()) out.push_back(p);
}

TotalCostModel::TotalCostModel(const GnnConfig& config, std::uint64_t seed)
    : config_(config) {
  util::Rng rng(seed);
  branches_.resize(static_cast<std::size_t>(config.branches));
  for (auto& branch : branches_) {
    branch.push_back(std::make_unique<ConvBlock>(config.input_dim,
                                                 config.hidden_dim, rng));
    for (int b = 1; b + 1 < config.blocks; ++b) {
      branch.push_back(std::make_unique<ConvBlock>(config.hidden_dim,
                                                   config.hidden_dim, rng));
    }
    branch.push_back(std::make_unique<ConvBlock>(config.hidden_dim,
                                                 config.conv_out_dim, rng));
  }
  head1_ = std::make_unique<Linear>(config.conv_out_dim, config.head_hidden_dim, rng);
  head_bn_ = std::make_unique<BatchNorm>(config.head_hidden_dim);
  head2_ = std::make_unique<Linear>(config.head_hidden_dim, 1, rng);
}

Matrix TotalCostModel::embed(const SparseRows& adj, const Matrix& features,
                             bool training, EmbedCache& cache) {
  return embed_batch({&adj}, {&features}, training, cache);
}

Matrix TotalCostModel::embed_batch(
    const std::vector<const SparseRows*>& adjacencies,
    const std::vector<const Matrix*>& features, bool training,
    EmbedCache& cache) {
  assert(!features.empty() && adjacencies.size() == features.size());
  const int batch = static_cast<int>(features.size());

  // Stack node features and adjacency block-diagonally. Feature rows of one
  // graph are contiguous, so each graph lands in `stacked` as a single block
  // copy; the adjacency goes straight into CSR lanes (one counting pass,
  // then a flat fill) instead of one heap allocation per node row.
  int total_nodes = 0;
  std::size_t total_entries = 0;
  cache.graph_sizes.clear();
  for (int g = 0; g < batch; ++g) {
    const Matrix* x = features[static_cast<std::size_t>(g)];
    assert(x->cols == config_.input_dim);
    cache.graph_sizes.push_back(x->rows);
    total_nodes += x->rows;
    for (const auto& row : *adjacencies[static_cast<std::size_t>(g)]) {
      total_entries += row.size();
    }
  }
  Matrix stacked(total_nodes, config_.input_dim);
  SparseAdj& combined = cache.combined_adj;
  combined.offsets.resize(static_cast<std::size_t>(total_nodes) + 1);
  combined.offsets[0] = 0;
  combined.cols.resize(total_entries);
  combined.weights.resize(total_entries);
  int offset = 0;
  std::size_t slot = 0;
  for (int g = 0; g < batch; ++g) {
    const Matrix& x = *features[static_cast<std::size_t>(g)];
    std::copy(x.data.begin(), x.data.end(), stacked.row(offset));
    const SparseRows& adj = *adjacencies[static_cast<std::size_t>(g)];
    for (int r = 0; r < x.rows; ++r) {
      for (const auto& [col, w] : adj[static_cast<std::size_t>(r)]) {
        combined.cols[slot] = col + offset;
        combined.weights[slot] = w;
        ++slot;
      }
      combined.offsets[static_cast<std::size_t>(offset + r) + 1] = slot;
    }
    offset += x.rows;
  }

  cache.branch_caches.assign(branches_.size(), {});
  Matrix accumulated(total_nodes, config_.conv_out_dim);
  for (std::size_t b = 0; b < branches_.size(); ++b) {
    cache.branch_caches[b].resize(branches_[b].size());
    Matrix h = stacked;
    for (std::size_t blk = 0; blk < branches_[b].size(); ++blk) {
      h = branches_[b][blk]->forward(cache.combined_adj, h, training,
                                     cache.branch_caches[b][blk]);
    }
    for (std::size_t i = 0; i < accumulated.data.size(); ++i) {
      accumulated.data[i] += h.data[i];
    }
  }

  // Per-graph mean pooling.
  Matrix pooled(batch, config_.conv_out_dim);
  offset = 0;
  for (int g = 0; g < batch; ++g) {
    const int n = cache.graph_sizes[static_cast<std::size_t>(g)];
    for (int r = 0; r < n; ++r) {
      const double* row = accumulated.row(offset + r);
      for (int c = 0; c < accumulated.cols; ++c) pooled.at(g, c) += row[c];
    }
    for (int c = 0; c < pooled.cols; ++c) pooled.at(g, c) /= n;
    offset += n;
  }
  return pooled;
}

void TotalCostModel::embed_backward(const EmbedCache& cache,
                                    const Matrix& grad_embeddings) {
  assert(grad_embeddings.rows == static_cast<int>(cache.graph_sizes.size()));
  int total_nodes = 0;
  for (const int n : cache.graph_sizes) total_nodes += n;

  // Un-pool: node rows of graph g receive grad_g / N_g.
  Matrix grad_sum(total_nodes, config_.conv_out_dim);
  int offset = 0;
  for (std::size_t g = 0; g < cache.graph_sizes.size(); ++g) {
    const int n = cache.graph_sizes[g];
    for (int r = 0; r < n; ++r) {
      double* row = grad_sum.row(offset + r);
      for (int c = 0; c < config_.conv_out_dim; ++c) {
        row[c] = grad_embeddings.at(static_cast<int>(g), c) / n;
      }
    }
    offset += n;
  }
  for (std::size_t b = 0; b < branches_.size(); ++b) {
    Matrix grad = grad_sum;
    for (std::size_t blk = branches_[b].size(); blk-- > 0;) {
      grad = branches_[b][blk]->backward(cache.combined_adj,
                                         cache.branch_caches[b][blk], grad);
    }
  }
}

Matrix TotalCostModel::head_forward(const Matrix& embeddings, bool training,
                                    HeadCache& cache) {
  cache.embeddings = embeddings;
  cache.hidden = head1_->forward(embeddings);
  Matrix normed = head_bn_->forward(cache.hidden, training, cache.bn);
  relu_inplace(normed);
  cache.activated = normed;
  return head2_->forward(normed);
}

Matrix TotalCostModel::head_backward(const HeadCache& cache,
                                     const Matrix& grad_out) {
  Matrix grad_act = head2_->backward(cache.activated, grad_out);
  relu_backward(cache.activated, grad_act);
  Matrix grad_hidden = head_bn_->backward(cache.bn, grad_act);
  return head1_->backward(cache.embeddings, grad_hidden);
}

double TotalCostModel::predict(const SparseRows& adj, const Matrix& features) {
  EmbedCache embed_cache;
  const Matrix embedding = embed(adj, features, /*training=*/false, embed_cache);
  HeadCache head_cache;
  const Matrix out = head_forward(embedding, /*training=*/false, head_cache);
  return out.at(0, 0);
}

std::vector<double> TotalCostModel::predict_batch(
    const std::vector<const SparseRows*>& adjacencies,
    const std::vector<const Matrix*>& features) {
  if (adjacencies.empty()) return {};
  EmbedCache embed_cache;
  const Matrix embeddings =
      embed_batch(adjacencies, features, /*training=*/false, embed_cache);
  HeadCache head_cache;
  const Matrix out = head_forward(embeddings, /*training=*/false, head_cache);
  std::vector<double> predictions(adjacencies.size());
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    predictions[i] = out.at(static_cast<int>(i), 0);
  }
  return predictions;
}

std::vector<BatchNorm*> TotalCostModel::batch_norms() {
  std::vector<BatchNorm*> out;
  for (auto& branch : branches_) {
    for (auto& block : branch) out.push_back(&block->batch_norm());
  }
  out.push_back(head_bn_.get());
  return out;
}

std::vector<Param*> TotalCostModel::params() {
  std::vector<Param*> out;
  for (auto& branch : branches_) {
    for (auto& block : branch) block->collect_params(out);
  }
  for (Param* p : head1_->params()) out.push_back(p);
  for (Param* p : head_bn_->params()) out.push_back(p);
  for (Param* p : head2_->params()) out.push_back(p);
  return out;
}

}  // namespace ppacd::ml
