#include "ml/tensor.hpp"

#include "exec/exec.hpp"

namespace ppacd::ml {

namespace {
// Rows per spmm chunk; chunk boundaries depend only on (rows, grain), the
// same determinism contract as every other parallel loop in the tree.
constexpr std::size_t kSpmmGrain = 64;
}

void matmul(const Matrix& a, const MatrixView& b, Matrix& out) {
  assert(a.cols == b.rows);
  out = Matrix(a.rows, b.cols);
  for (int i = 0; i < a.rows; ++i) {
    double* out_row = out.row(i);
    const double* a_row = a.row(i);
    for (int k = 0; k < a.cols; ++k) {
      const double av = a_row[k];
      if (av == 0.0) continue;
      const double* b_row = b.row(k);
      for (int j = 0; j < b.cols; ++j) out_row[j] += av * b_row[j];
    }
  }
}

void matmul_at_b(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.rows == b.rows);
  out = Matrix(a.cols, b.cols);
  for (int k = 0; k < a.rows; ++k) {
    const double* a_row = a.row(k);
    const double* b_row = b.row(k);
    for (int i = 0; i < a.cols; ++i) {
      const double av = a_row[i];
      if (av == 0.0) continue;
      double* out_row = out.row(i);
      for (int j = 0; j < b.cols; ++j) out_row[j] += av * b_row[j];
    }
  }
}

void matmul_a_bt(const Matrix& a, const MatrixView& b, Matrix& out) {
  assert(a.cols == b.cols);
  out = Matrix(a.rows, b.rows);
  for (int i = 0; i < a.rows; ++i) {
    const double* a_row = a.row(i);
    double* out_row = out.row(i);
    for (int j = 0; j < b.rows; ++j) {
      const double* b_row = b.row(j);
      double sum = 0.0;
      for (int k = 0; k < a.cols; ++k) sum += a_row[k] * b_row[k];
      out_row[j] = sum;
    }
  }
}

void spmm(const SparseRows& adjacency, const Matrix& x, Matrix& out) {
  assert(static_cast<int>(adjacency.size()) == x.rows);
  out = Matrix(x.rows, x.cols);
  for (int i = 0; i < x.rows; ++i) {
    double* out_row = out.row(i);
    for (const auto& [j, w] : adjacency[static_cast<std::size_t>(i)]) {
      const double* x_row = x.row(j);
      for (int c = 0; c < x.cols; ++c) out_row[c] += w * x_row[c];
    }
  }
}

void SparseAdj::from_rows(const SparseRows& rows) {
  const std::size_t n = rows.size();
  offsets.resize(n + 1);
  offsets[0] = 0;
  std::size_t entries = 0;
  for (std::size_t r = 0; r < n; ++r) {
    entries += rows[r].size();
    offsets[r + 1] = entries;
  }
  cols.resize(entries);
  weights.resize(entries);
  std::size_t k = 0;
  for (std::size_t r = 0; r < n; ++r) {
    for (const auto& [c, w] : rows[r]) {
      cols[k] = c;
      weights[k] = w;
      ++k;
    }
  }
}

void spmm(const SparseAdj& adjacency, const Matrix& x, Matrix& out) {
  assert(adjacency.rows() == x.rows);
  out = Matrix(x.rows, x.cols);
  const std::size_t* off = adjacency.offsets.data();
  const std::int32_t* cols = adjacency.cols.data();
  const double* wts = adjacency.weights.data();
  const int ncols = x.cols;
  exec::parallel_for_chunks(
      std::size_t{0}, static_cast<std::size_t>(x.rows), kSpmmGrain,
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t i = lo; i < hi; ++i) {
          double* out_row = out.row(static_cast<int>(i));
          for (std::size_t k = off[i]; k < off[i + 1]; ++k) {
            const double w = wts[k];
            const double* x_row = x.row(cols[k]);
            for (int c = 0; c < ncols; ++c) out_row[c] += w * x_row[c];
          }
        }
      });
}

void relu_inplace(Matrix& x) {
  for (double& v : x.data) {
    if (v < 0.0) v = 0.0;
  }
}

void relu_backward(const Matrix& activated, Matrix& grad) {
  assert(activated.data.size() == grad.data.size());
  for (std::size_t i = 0; i < grad.data.size(); ++i) {
    if (activated.data[i] <= 0.0) grad.data[i] = 0.0;
  }
}

}  // namespace ppacd::ml
