#include "ml/tensor.hpp"

namespace ppacd::ml {

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols == b.rows);
  out = Matrix(a.rows, b.cols);
  for (int i = 0; i < a.rows; ++i) {
    double* out_row = out.row(i);
    const double* a_row = a.row(i);
    for (int k = 0; k < a.cols; ++k) {
      const double av = a_row[k];
      if (av == 0.0) continue;
      const double* b_row = b.row(k);
      for (int j = 0; j < b.cols; ++j) out_row[j] += av * b_row[j];
    }
  }
}

void matmul_at_b(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.rows == b.rows);
  out = Matrix(a.cols, b.cols);
  for (int k = 0; k < a.rows; ++k) {
    const double* a_row = a.row(k);
    const double* b_row = b.row(k);
    for (int i = 0; i < a.cols; ++i) {
      const double av = a_row[i];
      if (av == 0.0) continue;
      double* out_row = out.row(i);
      for (int j = 0; j < b.cols; ++j) out_row[j] += av * b_row[j];
    }
  }
}

void matmul_a_bt(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols == b.cols);
  out = Matrix(a.rows, b.rows);
  for (int i = 0; i < a.rows; ++i) {
    const double* a_row = a.row(i);
    double* out_row = out.row(i);
    for (int j = 0; j < b.rows; ++j) {
      const double* b_row = b.row(j);
      double sum = 0.0;
      for (int k = 0; k < a.cols; ++k) sum += a_row[k] * b_row[k];
      out_row[j] = sum;
    }
  }
}

void spmm(const SparseRows& adjacency, const Matrix& x, Matrix& out) {
  assert(static_cast<int>(adjacency.size()) == x.rows);
  out = Matrix(x.rows, x.cols);
  for (int i = 0; i < x.rows; ++i) {
    double* out_row = out.row(i);
    for (const auto& [j, w] : adjacency[static_cast<std::size_t>(i)]) {
      const double* x_row = x.row(j);
      for (int c = 0; c < x.cols; ++c) out_row[c] += w * x_row[c];
    }
  }
}

void relu_inplace(Matrix& x) {
  for (double& v : x.data) {
    if (v < 0.0) v = 0.0;
  }
}

void relu_backward(const Matrix& activated, Matrix& grad) {
  assert(activated.data.size() == grad.data.size());
  for (std::size_t i = 0; i < grad.data.size(); ++i) {
    if (activated.data[i] <= 0.0) grad.data[i] = 0.0;
  }
}

}  // namespace ppacd::ml
