#include "ml/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace ppacd::ml {

namespace {

constexpr char kMagic[8] = {'P', 'P', 'A', 'C', 'D', 'M', 'L', '1'};

void write_i32(std::ostream& out, std::int32_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_f64(std::ostream& out, double v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_vec(std::ostream& out, const std::vector<double>& v) {
  write_i32(out, static_cast<std::int32_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(double)));
}

bool read_i32(std::istream& in, std::int32_t* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

bool read_f64(std::istream& in, double* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(in);
}

bool read_vec(std::istream& in, std::vector<double>* v) {
  std::int32_t size = 0;
  if (!read_i32(in, &size) || size < 0 || size > (1 << 26)) return false;
  v->resize(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(v->data()),
          static_cast<std::streamsize>(v->size() * sizeof(double)));
  return static_cast<bool>(in);
}

}  // namespace

void save_model(const TrainedModel& model, const GnnConfig& config,
                std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  write_i32(out, config.input_dim);
  write_i32(out, config.hidden_dim);
  write_i32(out, config.conv_out_dim);
  write_i32(out, config.head_hidden_dim);
  write_i32(out, config.branches);
  write_i32(out, config.blocks);
  write_vec(out, model.feature_mean());
  write_vec(out, model.feature_std());
  write_f64(out, model.label_mean());
  write_f64(out, model.label_std());

  const auto params = model.network()->params();
  write_i32(out, static_cast<std::int32_t>(params.size()));
  for (const Param* p : params) write_vec(out, p->value);

  const auto norms = model.network()->batch_norms();
  write_i32(out, static_cast<std::int32_t>(norms.size()));
  for (BatchNorm* bn : norms) {
    write_vec(out, bn->running_mean());
    write_vec(out, bn->running_var());
  }
}

bool save_model_file(const TrainedModel& model, const GnnConfig& config,
                     const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  save_model(model, config, out);
  return static_cast<bool>(out);
}

std::shared_ptr<TrainedModel> load_model(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return nullptr;

  GnnConfig config;
  if (!read_i32(in, &config.input_dim) || !read_i32(in, &config.hidden_dim) ||
      !read_i32(in, &config.conv_out_dim) ||
      !read_i32(in, &config.head_hidden_dim) || !read_i32(in, &config.branches) ||
      !read_i32(in, &config.blocks)) {
    return nullptr;
  }
  std::vector<double> mean;
  std::vector<double> stddev;
  double label_mean = 0.0;
  double label_std = 1.0;
  if (!read_vec(in, &mean) || !read_vec(in, &stddev) ||
      !read_f64(in, &label_mean) || !read_f64(in, &label_std)) {
    return nullptr;
  }

  auto network = std::make_shared<TotalCostModel>(config, /*seed=*/0);
  const auto params = network->params();
  std::int32_t count = 0;
  if (!read_i32(in, &count) ||
      count != static_cast<std::int32_t>(params.size())) {
    return nullptr;
  }
  for (Param* p : params) {
    std::vector<double> values;
    if (!read_vec(in, &values) || values.size() != p->value.size()) return nullptr;
    p->value = std::move(values);
  }

  const auto norms = network->batch_norms();
  std::int32_t norm_count = 0;
  if (!read_i32(in, &norm_count) ||
      norm_count != static_cast<std::int32_t>(norms.size())) {
    return nullptr;
  }
  for (BatchNorm* bn : norms) {
    std::vector<double> running_mean;
    std::vector<double> running_var;
    if (!read_vec(in, &running_mean) || !read_vec(in, &running_var)) return nullptr;
    bn->set_running_stats(std::move(running_mean), std::move(running_var));
  }
  return std::make_shared<TrainedModel>(network, std::move(mean),
                                        std::move(stddev), label_mean, label_std);
}

std::shared_ptr<TrainedModel> load_model_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return nullptr;
  return load_model(in);
}

}  // namespace ppacd::ml
