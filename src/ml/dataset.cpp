#include "ml/dataset.hpp"

#include <algorithm>

#include "cluster/fc_multilevel.hpp"
#include "netlist/subnetlist.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace ppacd::ml {

Dataset build_dataset(const std::vector<const netlist::Netlist*>& designs,
                      const DatasetOptions& options,
                      const vpr::VprOptions& vpr_options) {
  Dataset dataset;
  dataset.shapes = vpr::candidate_shapes(vpr_options);
  util::Rng rng(options.seed);

  for (const netlist::Netlist* design : designs) {
    int taken = 0;
    for (int config = 0; config < options.clustering_configs; ++config) {
      if (taken >= options.max_clusters_per_design) break;
      cluster::FcOptions fc;
      fc.seed = rng.engine()();
      // Perturb the coarsening target around cells/averaged cluster size so
      // configs yield differently sized clusters.
      const int base =
          std::max<int>(8, static_cast<int>(design->cell_count()) /
                               ((options.min_cluster_size + options.max_cluster_size) / 2));
      fc.target_cluster_count = std::max(4, base + rng.uniform_int(-base / 3, base / 2));
      const cluster::FcResult fc_result =
          cluster::fc_multilevel_cluster(*design, cluster::FcPpaInputs{}, fc);
      const cluster::ClusteredNetlist clustered = cluster::build_clustered_netlist(
          *design, fc_result.cluster_of_cell, fc_result.cluster_count);

      for (const cluster::Cluster& c : clustered.clusters) {
        if (taken >= options.max_clusters_per_design) break;
        const int size = static_cast<int>(c.cells.size());
        if (size < options.min_cluster_size || size > options.max_cluster_size) {
          continue;
        }
        const netlist::SubNetlist sub = netlist::extract_subnetlist(*design, c.cells);

        ClusterSample sample;
        sample.cluster_size = size;
        features::FeatureOptions fo = options.feature_options;
        fo.seed = rng.engine()();
        sample.graph = features::extract_cluster_graph(sub.netlist, fo);
        sample.labels.reserve(dataset.shapes.size());
        for (const cluster::ClusterShape& shape : dataset.shapes) {
          sample.labels.push_back(
              vpr::evaluate_shape(sub.netlist, shape, vpr_options).total_cost);
        }
        dataset.clusters.push_back(std::move(sample));
        ++taken;
      }
    }
    PPACD_LOG_INFO("dataset") << design->name() << ": " << taken
                              << " labelled clusters";
  }
  return dataset;
}

}  // namespace ppacd::ml
