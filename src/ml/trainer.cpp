#include "ml/trainer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ppacd::ml {

namespace {

constexpr int kDim = features::kFeatureDim;

/// (cluster, shape) index pair.
struct SampleRef {
  std::int32_t cluster;
  std::int32_t shape;
};

/// A corrupt extracted graph (or a poisoned upstream stat) must not leak
/// NaN/Inf into the GNN: a non-finite raw feature standardizes to 0 (the
/// training mean), so one bad slot degrades that feature instead of
/// poisoning the whole prediction.
double standardize(double value, double mean, double stddev) {
  if (!std::isfinite(value)) return 0.0;
  const double z = (value - mean) / stddev;
  return std::isfinite(z) ? z : 0.0;
}

Matrix build_features(const features::ClusterGraph& graph,
                      const cluster::ClusterShape& shape,
                      const std::vector<double>& mean,
                      const std::vector<double>& stddev) {
  Matrix x(graph.node_count, kDim);
  for (std::int32_t v = 0; v < graph.node_count; ++v) {
    for (int c = 0; c < kDim; ++c) {
      double value = graph.feature(v, c);
      if (c == features::kShapeUtilSlot) value = shape.utilization;
      if (c == features::kShapeAspectSlot) value = shape.aspect_ratio;
      x.at(v, c) = standardize(value, mean[static_cast<std::size_t>(c)],
                               stddev[static_cast<std::size_t>(c)]);
    }
  }
  return x;
}

}  // namespace

TrainedModel::TrainedModel(std::shared_ptr<TotalCostModel> model,
                           std::vector<double> feature_mean,
                           std::vector<double> feature_std, double label_mean,
                           double label_std)
    : model_(std::move(model)), mean_(std::move(feature_mean)),
      std_(std::move(feature_std)), label_mean_(label_mean),
      label_std_(label_std) {}

Matrix TrainedModel::standardized_features(
    const features::ClusterGraph& graph,
    const cluster::ClusterShape& shape) const {
  return build_features(graph, shape, mean_, std_);
}

double TrainedModel::predict(const features::ClusterGraph& graph,
                             const cluster::ClusterShape& shape) const {
  const Matrix x = standardized_features(graph, shape);
  return model_->predict(graph.adjacency, x) * label_std_ + label_mean_;
}

vpr::ShapeCostPredictor TrainedModel::predictor(
    const features::FeatureOptions& feature_options) const {
  // The closure copies this object's state so it outlives the TrainedModel.
  auto model = model_;
  auto mean = mean_;
  auto stddev = std_;
  const double label_mean = label_mean_;
  const double label_std = label_std_;
  return [model, mean, stddev, label_mean, label_std, feature_options](
             const netlist::Netlist& subnetlist,
             const std::vector<cluster::ClusterShape>& candidates) {
    const features::ClusterGraph graph =
        features::extract_cluster_graph(subnetlist, feature_options);
    // Build every candidate's feature matrix, then run one batched forward:
    // the candidates share the graph, so the embed stacks |candidates|
    // copies block-diagonally and the head scores them all at once. Only
    // the two shape slots differ between candidates, so the 33 shared
    // columns are standardized once into a base matrix and each candidate
    // is a block copy plus two patched slots — standardize() runs the same
    // expression per element either way, so values are bit-identical.
    Matrix base(graph.node_count, kDim);
    for (std::int32_t v = 0; v < graph.node_count; ++v) {
      for (int c = 0; c < kDim; ++c) {
        base.at(v, c) =
            standardize(graph.feature(v, c), mean[static_cast<std::size_t>(c)],
                        stddev[static_cast<std::size_t>(c)]);
      }
    }
    std::vector<Matrix> xs;
    xs.reserve(candidates.size());
    for (const cluster::ClusterShape& shape : candidates) {
      Matrix x = base;
      const double util = standardize(
          shape.utilization, mean[features::kShapeUtilSlot],
          stddev[features::kShapeUtilSlot]);
      const double aspect = standardize(
          shape.aspect_ratio, mean[features::kShapeAspectSlot],
          stddev[features::kShapeAspectSlot]);
      for (std::int32_t v = 0; v < graph.node_count; ++v) {
        x.at(v, features::kShapeUtilSlot) = util;
        x.at(v, features::kShapeAspectSlot) = aspect;
      }
      xs.push_back(std::move(x));
    }
    std::vector<const SparseRows*> adjacencies(xs.size(), &graph.adjacency);
    std::vector<const Matrix*> feature_ptrs;
    feature_ptrs.reserve(xs.size());
    for (const Matrix& x : xs) feature_ptrs.push_back(&x);
    std::vector<double> costs = model->predict_batch(adjacencies, feature_ptrs);
    for (double& cost : costs) cost = cost * label_std + label_mean;
    return costs;
  };
}

TrainResult train_total_cost_model(const Dataset& dataset,
                                   const TrainOptions& options) {
  TrainResult result;
  assert(!dataset.clusters.empty());
  util::Rng rng(options.seed);

  // --- Split by cluster -------------------------------------------------------
  const std::size_t n_clusters = dataset.clusters.size();
  std::vector<std::size_t> order = rng.permutation(n_clusters);
  // Keep at least one cluster in every split when there are >= 3 clusters.
  std::size_t n_train = std::max<std::size_t>(
      1, static_cast<std::size_t>(options.train_fraction *
                                  static_cast<double>(n_clusters)));
  if (n_clusters >= 3) n_train = std::min(n_train, n_clusters - 2);
  std::size_t n_val = std::max<std::size_t>(
      1, static_cast<std::size_t>(options.val_fraction *
                                  static_cast<double>(n_clusters)));
  if (n_clusters >= 2) n_val = std::min(n_val, n_clusters - n_train - (n_clusters >= 3 ? 1 : 0));
  std::vector<int> split(n_clusters, 2);  // 0 train, 1 val, 2 test
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i < n_train) split[order[i]] = 0;
    else if (i < n_train + n_val) split[order[i]] = 1;
  }

  // --- Feature scaler from the training clusters ------------------------------
  std::vector<double> mean(kDim, 0.0);
  std::vector<double> stddev(kDim, 1.0);
  {
    std::vector<double> sum(kDim, 0.0);
    std::vector<double> sum_sq(kDim, 0.0);
    std::size_t rows = 0;
    for (std::size_t ci = 0; ci < n_clusters; ++ci) {
      if (split[ci] != 0) continue;
      const features::ClusterGraph& g = dataset.clusters[ci].graph;
      for (std::int32_t v = 0; v < g.node_count; ++v) {
        for (int c = 2; c < kDim; ++c) {
          const double value = g.feature(v, c);
          sum[static_cast<std::size_t>(c)] += value;
          sum_sq[static_cast<std::size_t>(c)] += value * value;
        }
        ++rows;
      }
    }
    for (int c = 2; c < kDim; ++c) {
      mean[static_cast<std::size_t>(c)] =
        sum[static_cast<std::size_t>(c)] / static_cast<double>(rows);
      const double var =
        sum_sq[static_cast<std::size_t>(c)] / static_cast<double>(rows) -
                         mean[static_cast<std::size_t>(c)] * mean[static_cast<std::size_t>(c)];
      stddev[static_cast<std::size_t>(c)] = var > 1e-12 ? std::sqrt(var) : 1.0;
    }
    // Shape slots: scale from the candidate list.
    std::vector<double> utils;
    std::vector<double> ars;
    for (const auto& s : dataset.shapes) {
      utils.push_back(s.utilization);
      ars.push_back(s.aspect_ratio);
    }
    mean[features::kShapeUtilSlot] = util::mean(utils);
    stddev[features::kShapeUtilSlot] = std::max(util::stddev(utils), 1e-3);
    mean[features::kShapeAspectSlot] = util::mean(ars);
    stddev[features::kShapeAspectSlot] = std::max(util::stddev(ars), 1e-3);
  }

  // --- Label statistics --------------------------------------------------------
  {
    std::vector<double> labels;
    for (const ClusterSample& s : dataset.clusters) {
      labels.insert(labels.end(), s.labels.begin(), s.labels.end());
    }
    const util::Summary summary = util::summarize(labels);
    result.labels = {summary.min, summary.max, summary.mean, summary.stddev};
  }

  // --- Target standardization (training-split statistics) ---------------------
  double label_mean = 0.0;
  double label_std = 1.0;
  {
    std::vector<double> train_labels;
    for (std::size_t ci = 0; ci < n_clusters; ++ci) {
      if (split[ci] != 0) continue;
      const auto& labels = dataset.clusters[ci].labels;
      train_labels.insert(train_labels.end(), labels.begin(), labels.end());
    }
    label_mean = util::mean(train_labels);
    label_std = std::max(util::stddev(train_labels), 1e-6);
  }

  // --- Training ----------------------------------------------------------------
  auto model = std::make_shared<TotalCostModel>(GnnConfig{}, rng.engine()());
  Adam adam(model->params(), options.learning_rate);

  std::vector<SampleRef> train_samples;
  for (std::size_t ci = 0; ci < n_clusters; ++ci) {
    if (split[ci] != 0) continue;
    for (std::size_t si = 0; si < dataset.shapes.size(); ++si) {
      train_samples.push_back({static_cast<std::int32_t>(ci),
                               static_cast<std::int32_t>(si)});
    }
  }

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.shuffle(train_samples);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < train_samples.size();
         start += static_cast<std::size_t>(options.batch_size)) {
      const std::size_t end = std::min(
          train_samples.size(), start + static_cast<std::size_t>(options.batch_size));
      const int batch = static_cast<int>(end - start);
      if (batch < 2) continue;  // head batch-norm needs > 1 sample

      std::vector<Matrix> feature_store;
      feature_store.reserve(static_cast<std::size_t>(batch));
      std::vector<const SparseRows*> adjacencies;
      std::vector<const Matrix*> feature_ptrs;
      Matrix targets(batch, 1);
      for (int i = 0; i < batch; ++i) {
        const SampleRef& ref = train_samples[start + static_cast<std::size_t>(i)];
        const ClusterSample& sample =
            dataset.clusters[static_cast<std::size_t>(ref.cluster)];
        feature_store.push_back(build_features(
            sample.graph, dataset.shapes[static_cast<std::size_t>(ref.shape)],
            mean, stddev));
        adjacencies.push_back(&sample.graph.adjacency);
        targets.at(i, 0) =
            (sample.labels[static_cast<std::size_t>(ref.shape)] - label_mean) /
            label_std;
      }
      for (const Matrix& x : feature_store) feature_ptrs.push_back(&x);
      TotalCostModel::EmbedCache embed_cache;
      const Matrix embeddings =
          model->embed_batch(adjacencies, feature_ptrs, true, embed_cache);

      TotalCostModel::HeadCache head_cache;
      const Matrix out = model->head_forward(embeddings, true, head_cache);
      Matrix grad_out(batch, 1);
      double loss = 0.0;
      for (int i = 0; i < batch; ++i) {
        const double err = out.at(i, 0) - targets.at(i, 0);
        loss += err * err;
        grad_out.at(i, 0) = 2.0 * err / batch;
      }
      epoch_loss += loss / batch;
      ++batches;

      const Matrix grad_embeddings = model->head_backward(head_cache, grad_out);
      model->embed_backward(embed_cache, grad_embeddings);
      adam.step();
    }
    ++result.epochs_run;
    PPACD_LOG_DEBUG("train") << "epoch " << epoch << " mse "
                             << (batches > 0 ? epoch_loss / static_cast<double>(batches) : 0.0);
  }

  // --- Evaluation ----------------------------------------------------------------
  result.model = std::make_shared<TrainedModel>(model, mean, stddev, label_mean,
                                                label_std);
  auto evaluate = [&](int which) {
    std::vector<double> predicted;
    std::vector<double> actual;
    for (std::size_t ci = 0; ci < n_clusters; ++ci) {
      if (split[ci] != which) continue;
      const ClusterSample& sample = dataset.clusters[ci];
      for (std::size_t si = 0; si < dataset.shapes.size(); ++si) {
        predicted.push_back(result.model->predict(sample.graph, dataset.shapes[si]));
        actual.push_back(sample.labels[si]);
      }
    }
    SplitMetrics metrics;
    metrics.sample_count = predicted.size();
    metrics.mae = util::mean_absolute_error(predicted, actual);
    metrics.r2 = util::r2_score(predicted, actual);
    return metrics;
  };
  result.train = evaluate(0);
  result.val = evaluate(1);
  result.test = evaluate(2);
  return result;
}

}  // namespace ppacd::ml
