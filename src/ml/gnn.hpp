/// \file gnn.hpp
/// \brief The Figure-4 GNN: 4 convolution branches x 3 hypergraph-conv
/// blocks (35 -> 64 -> 64 -> 32, skip connection on the dimension-preserving
/// block), branch accumulation, global mean pooling, and a 32 -> 64 -> 1
/// prediction head with batch norm -- predicting a cluster shape's TotalCost.
///
/// Hypergraph convolution [3] reduces, on the clique-expanded cluster graph
/// with symmetric normalization, to X' = A_hat X W; that is what each block
/// computes, followed by batch norm and ReLU.
#pragma once

#include <memory>
#include <vector>

#include "ml/layers.hpp"
#include "ml/tensor.hpp"

namespace ppacd::ml {

struct GnnConfig {
  int input_dim = 35;
  int hidden_dim = 64;
  int conv_out_dim = 32;
  int head_hidden_dim = 64;
  int branches = 4;
  int blocks = 3;  ///< fixed topology: in->hidden, hidden->hidden, hidden->out
};

/// One convolution block: Z = (A_hat X) W + b, then BN, ReLU, and a skip
/// connection when in_dim == out_dim.
class ConvBlock {
 public:
  ConvBlock(int in_dim, int out_dim, util::Rng& rng)
      : linear_(in_dim, out_dim, rng), bn_(out_dim), skip_(in_dim == out_dim) {}

  struct Cache {
    Matrix x_in;
    Matrix propagated;  ///< A_hat X
    Matrix activated;   ///< post-ReLU (pre-skip)
    BatchNorm::Cache bn;
  };

  Matrix forward(const SparseAdj& adj, const Matrix& x, bool training,
                 Cache& cache);
  /// Returns dX; accumulates parameter gradients.
  Matrix backward(const SparseAdj& adj, const Cache& cache,
                  const Matrix& grad_out);

  void collect_params(std::vector<Param*>& out);
  BatchNorm& batch_norm() { return bn_; }

 private:
  Linear linear_;
  BatchNorm bn_;
  bool skip_;
};

/// The full TotalCost model.
class TotalCostModel {
 public:
  TotalCostModel(const GnnConfig& config, std::uint64_t seed);

  struct EmbedCache {
    std::vector<std::vector<ConvBlock::Cache>> branch_caches;  ///< [branch][block]
    std::vector<int> graph_sizes;  ///< nodes per graph in the batch
    /// Block-diagonal adjacency of the batch in CSR SoA lanes: built with
    /// one counting pass and three flat arrays, not a vector per node.
    SparseAdj combined_adj;
  };

  /// Graph -> pooled embedding (1 x conv_out_dim).
  Matrix embed(const SparseRows& adj, const Matrix& features, bool training,
               EmbedCache& cache);

  /// Batched embedding: stacks the graphs block-diagonally so batch norm
  /// sees node statistics across the whole minibatch (PyG semantics; with
  /// per-graph batches, graph-constant feature columns would have zero
  /// batch variance and eval-mode statistics would diverge). Returns
  /// B x conv_out_dim pooled embeddings.
  Matrix embed_batch(const std::vector<const SparseRows*>& adjacencies,
                     const std::vector<const Matrix*>& features, bool training,
                     EmbedCache& cache);

  /// Backward through pooling and all branches (no input gradient needed).
  /// `grad_embeddings` is B x conv_out_dim, matching embed_batch's output
  /// (or 1 x conv_out_dim after embed()).
  void embed_backward(const EmbedCache& cache, const Matrix& grad_embeddings);

  struct HeadCache {
    Matrix embeddings;  ///< B x conv_out
    Matrix hidden;      ///< B x head_hidden (pre-BN)
    Matrix activated;   ///< post-ReLU
    BatchNorm::Cache bn;
  };

  /// Batched head: embeddings (B x conv_out) -> predictions (B x 1).
  Matrix head_forward(const Matrix& embeddings, bool training, HeadCache& cache);
  /// Returns d(embeddings).
  Matrix head_backward(const HeadCache& cache, const Matrix& grad_out);

  /// Convenience single-sample inference (eval mode).
  double predict(const SparseRows& adj, const Matrix& features);

  /// Batched inference (eval mode): one block-diagonal embed + one head
  /// forward for all graphs. Eval-mode batch norm uses the stored running
  /// statistics, so each returned value equals the corresponding single
  /// predict() call — batching only amortizes the per-forward overhead.
  std::vector<double> predict_batch(
      const std::vector<const SparseRows*>& adjacencies,
      const std::vector<const Matrix*>& features);

  std::vector<Param*> params();
  /// All batch-norm layers, in a stable order (for state serialization).
  std::vector<BatchNorm*> batch_norms();
  const GnnConfig& config() const { return config_; }

 private:
  GnnConfig config_;
  std::vector<std::vector<std::unique_ptr<ConvBlock>>> branches_;
  std::unique_ptr<Linear> head1_;
  std::unique_ptr<BatchNorm> head_bn_;
  std::unique_ptr<Linear> head2_;
};

}  // namespace ppacd::ml
