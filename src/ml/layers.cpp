#include "ml/layers.hpp"

#include <cassert>
#include <cmath>

namespace ppacd::ml {

Linear::Linear(int in_dim, int out_dim, util::Rng& rng)
    : in_(in_dim), out_(out_dim) {
  w_.init(static_cast<std::size_t>(in_dim) * static_cast<std::size_t>(out_dim));
  b_.init(static_cast<std::size_t>(out_dim));
  const double bound = std::sqrt(6.0 / (in_dim + out_dim));
  for (double& v : w_.value) v = rng.uniform(-bound, bound);
}

Matrix Linear::forward(const Matrix& x) const {
  assert(x.cols == in_);
  Matrix out;
  matmul(x, MatrixView(in_, out_, w_.value.data()), out);
  for (int r = 0; r < out.rows; ++r) {
    double* row = out.row(r);
    for (int c = 0; c < out_; ++c) row[c] += b_.value[static_cast<std::size_t>(c)];
  }
  return out;
}

Matrix Linear::backward(const Matrix& x, const Matrix& grad_out) {
  assert(grad_out.cols == out_ && x.cols == in_ && x.rows == grad_out.rows);
  // dW += X^T dY.
  Matrix dw;
  matmul_at_b(x, grad_out, dw);
  for (std::size_t i = 0; i < w_.grad.size(); ++i) w_.grad[i] += dw.data[i];
  // db += column sums of dY.
  for (int r = 0; r < grad_out.rows; ++r) {
    const double* row = grad_out.row(r);
    for (int c = 0; c < out_; ++c) b_.grad[static_cast<std::size_t>(c)] += row[c];
  }
  // dX = dY W^T.
  Matrix dx;
  matmul_a_bt(grad_out, MatrixView(in_, out_, w_.value.data()), dx);
  return dx;
}

BatchNorm::BatchNorm(int dim) : dim_(dim) {
  gamma_.init(static_cast<std::size_t>(dim), 1.0);
  beta_.init(static_cast<std::size_t>(dim), 0.0);
  running_mean_.assign(static_cast<std::size_t>(dim), 0.0);
  running_var_.assign(static_cast<std::size_t>(dim), 1.0);
}

Matrix BatchNorm::forward(const Matrix& x, bool training, Cache& cache) {
  assert(x.cols == dim_);
  const int n = x.rows;
  Matrix out(n, dim_);
  cache.x_hat = Matrix(n, dim_);
  cache.inv_std.assign(static_cast<std::size_t>(dim_), 1.0);
  cache.used_batch_stats = training && n > 1;

  for (int c = 0; c < dim_; ++c) {
    double mean;
    double var;
    if (training && n > 1) {
      mean = 0.0;
      for (int r = 0; r < n; ++r) mean += x.at(r, c);
      mean /= n;
      var = 0.0;
      for (int r = 0; r < n; ++r) {
        const double d = x.at(r, c) - mean;
        var += d * d;
      }
      var /= n;
      running_mean_[static_cast<std::size_t>(c)] =
          (1.0 - momentum_) * running_mean_[static_cast<std::size_t>(c)] +
          momentum_ * mean;
      running_var_[static_cast<std::size_t>(c)] =
          (1.0 - momentum_) * running_var_[static_cast<std::size_t>(c)] +
          momentum_ * var;
    } else {
      mean = running_mean_[static_cast<std::size_t>(c)];
      var = running_var_[static_cast<std::size_t>(c)];
    }
    const double inv_std = 1.0 / std::sqrt(var + kEps);
    cache.inv_std[static_cast<std::size_t>(c)] = inv_std;
    const double g = gamma_.value[static_cast<std::size_t>(c)];
    const double b = beta_.value[static_cast<std::size_t>(c)];
    for (int r = 0; r < n; ++r) {
      const double xh = (x.at(r, c) - mean) * inv_std;
      cache.x_hat.at(r, c) = xh;
      out.at(r, c) = g * xh + b;
    }
  }
  return out;
}

Matrix BatchNorm::backward(const Cache& cache, const Matrix& grad_out) {
  const int n = grad_out.rows;
  Matrix dx(n, dim_);
  for (int c = 0; c < dim_; ++c) {
    double sum_dy = 0.0;
    double sum_dy_xhat = 0.0;
    for (int r = 0; r < n; ++r) {
      const double dy = grad_out.at(r, c);
      sum_dy += dy;
      sum_dy_xhat += dy * cache.x_hat.at(r, c);
    }
    gamma_.grad[static_cast<std::size_t>(c)] += sum_dy_xhat;
    beta_.grad[static_cast<std::size_t>(c)] += sum_dy;
    const double g = gamma_.value[static_cast<std::size_t>(c)];
    const double inv_std = cache.inv_std[static_cast<std::size_t>(c)];
    if (cache.used_batch_stats) {
      for (int r = 0; r < n; ++r) {
        const double dy = grad_out.at(r, c);
        dx.at(r, c) = g * inv_std / n *
                      (n * dy - sum_dy - cache.x_hat.at(r, c) * sum_dy_xhat);
      }
    } else {
      // Eval-mode pass: running statistics are constants.
      for (int r = 0; r < n; ++r) {
        dx.at(r, c) = g * inv_std * grad_out.at(r, c);
      }
    }
  }
  return dx;
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (Param* p : params_) {
    for (std::size_t i = 0; i < p->value.size(); ++i) {
      const double g = p->grad[i];
      p->m[i] = beta1_ * p->m[i] + (1.0 - beta1_) * g;
      p->v[i] = beta2_ * p->v[i] + (1.0 - beta2_) * g * g;
      const double m_hat = p->m[i] / bc1;
      const double v_hat = p->v[i] / bc2;
      p->value[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
  zero_grad();
}

void Adam::zero_grad() {
  for (Param* p : params_) {
    std::fill(p->grad.begin(), p->grad.end(), 0.0);
  }
}

}  // namespace ppacd::ml
