/// \file layers.hpp
/// \brief Trainable layers with explicit gradients, plus the Adam optimizer.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/tensor.hpp"
#include "util/rng.hpp"

namespace ppacd::ml {

/// One trainable parameter tensor with gradient and Adam state.
struct Param {
  std::vector<double> value;
  std::vector<double> grad;
  std::vector<double> m;  ///< Adam first moment
  std::vector<double> v;  ///< Adam second moment

  void init(std::size_t size, double val = 0.0) {
    value.assign(size, val);
    grad.assign(size, 0.0);
    m.assign(size, 0.0);
    v.assign(size, 0.0);
  }
};

/// Fully connected layer Y = X W + b with Glorot-uniform init.
class Linear {
 public:
  Linear(int in_dim, int out_dim, util::Rng& rng);

  /// Forward; caches nothing (caller keeps X for backward).
  Matrix forward(const Matrix& x) const;

  /// Accumulates dW/db and returns dX.
  Matrix backward(const Matrix& x, const Matrix& grad_out);

  std::vector<Param*> params() { return {&w_, &b_}; }
  int in_dim() const { return in_; }
  int out_dim() const { return out_; }

 private:
  int in_;
  int out_;
  Param w_;  ///< in x out row-major
  Param b_;  ///< out
};

/// 1-D batch normalization over rows (each row = one sample/node).
class BatchNorm {
 public:
  explicit BatchNorm(int dim);

  struct Cache {
    Matrix x_hat;
    std::vector<double> inv_std;
    bool used_batch_stats = false;  ///< which formula backward must apply
  };

  /// `training` uses batch statistics and updates running stats; otherwise
  /// the running statistics are applied.
  Matrix forward(const Matrix& x, bool training, Cache& cache);
  Matrix backward(const Cache& cache, const Matrix& grad_out);

  std::vector<Param*> params() { return {&gamma_, &beta_}; }

  // Running statistics (not trainable, but part of the inference state).
  const std::vector<double>& running_mean() const { return running_mean_; }
  const std::vector<double>& running_var() const { return running_var_; }
  void set_running_stats(std::vector<double> mean, std::vector<double> var) {
    running_mean_ = std::move(mean);
    running_var_ = std::move(var);
  }

 private:
  int dim_;
  Param gamma_;
  Param beta_;
  std::vector<double> running_mean_;
  std::vector<double> running_var_;
  double momentum_ = 0.1;
  static constexpr double kEps = 1e-5;
};

/// Adam optimizer over a set of Params.
class Adam {
 public:
  explicit Adam(std::vector<Param*> params, double lr = 1e-3)
      : params_(std::move(params)), lr_(lr) {}

  /// Applies one update from the accumulated gradients, then clears them.
  void step();
  void zero_grad();
  void set_lr(double lr) { lr_ = lr; }

 private:
  std::vector<Param*> params_;
  double lr_;
  double beta1_ = 0.9;
  double beta2_ = 0.999;
  double eps_ = 1e-8;
  std::int64_t t_ = 0;
};

}  // namespace ppacd::ml
