/// \file serialize.hpp
/// \brief TotalCost model persistence.
///
/// The paper's ML acceleration has a "one-time training cost"; persisting
/// the trained model makes that literal: bench_table6 and users of the
/// ML-accelerated flow can load a model trained earlier instead of
/// regenerating V-P&R labels and retraining. The format is a versioned
/// little-endian binary blob: config, feature/label scalers, then every
/// parameter tensor in params() order.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "ml/trainer.hpp"

namespace ppacd::ml {

/// Serializes a trained model (architecture config + scalers + weights).
void save_model(const TrainedModel& model, const GnnConfig& config,
                std::ostream& out);
bool save_model_file(const TrainedModel& model, const GnnConfig& config,
                     const std::string& path);

/// Restores a model saved by save_model; nullptr on malformed input.
std::shared_ptr<TrainedModel> load_model(std::istream& in);
std::shared_ptr<TrainedModel> load_model_file(const std::string& path);

}  // namespace ppacd::ml
