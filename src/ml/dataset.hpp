/// \file dataset.hpp
/// \brief Training data for the TotalCost model.
///
/// Mirrors the paper's data generation: clusters produced by the PPA-aware
/// clustering under perturbed seeds / coarsening targets, each labelled by
/// running exact V-P&R over all 20 candidate shapes (TotalCost is the
/// label). Counts are scaled down from the paper's 22700/5600/3200 clusters
/// (DESIGN.md section 6); the train/val/test ratio is preserved and splits
/// are made per cluster so no cluster leaks across splits.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/clustered_netlist.hpp"
#include "features/features.hpp"
#include "netlist/netlist.hpp"
#include "vpr/vpr.hpp"

namespace ppacd::ml {

struct DatasetOptions {
  int min_cluster_size = 30;    ///< instance bounds for usable clusters
  int max_cluster_size = 220;
  int max_clusters_per_design = 60;
  int clustering_configs = 3;   ///< perturbed (seed, target) configs per design
  std::uint64_t seed = 17;
  features::FeatureOptions feature_options;
};

/// One labelled cluster: its graph plus the 20 per-shape TotalCost labels.
struct ClusterSample {
  features::ClusterGraph graph;
  std::vector<double> labels;  ///< parallel to Dataset::shapes
  int cluster_size = 0;
};

struct Dataset {
  std::vector<ClusterSample> clusters;
  std::vector<cluster::ClusterShape> shapes;

  std::size_t sample_count() const { return clusters.size() * shapes.size(); }
};

/// Builds the dataset from the given designs (exact V-P&R labelling; this is
/// the expensive one-time cost the ML model amortizes).
Dataset build_dataset(const std::vector<const netlist::Netlist*>& designs,
                      const DatasetOptions& options,
                      const vpr::VprOptions& vpr_options);

}  // namespace ppacd::ml
