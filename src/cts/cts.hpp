/// \file cts.hpp
/// \brief Clock tree synthesis (TritonCTS substitute).
///
/// Builds a buffered clock tree over all flip-flop clock pins by recursive
/// geometric partitioning: sink groups are split at the median along their
/// longer axis until they fit under one buffer, then buffers are placed at
/// group centroids bottom-up. Insertion delays use the library's linear
/// delay model with Elmore wire delays, so the tree yields:
///   * per-register clock arrival times for post-CTS STA (launch/capture
///     skew enters WNS/TNS, Alg. 1 line 28),
///   * clock-tree wirelength added to routed wirelength, and
///   * total switched clock capacitance for the power report.
#pragma once

#include <string>
#include <vector>

#include "geom/geometry.hpp"
#include "netlist/netlist.hpp"

namespace ppacd::cts {

struct CtsOptions {
  int max_sinks_per_buffer = 16;
  std::string buffer_cell = "CLKBUF_X2";
};

struct ClockTreeResult {
  /// Clock arrival (insertion delay) per cell, indexed by CellId; zero for
  /// non-sequential cells. Feed to sta::StaOptions::clock_arrivals_ps.
  std::vector<double> insertion_delay_ps;
  double wirelength_um = 0.0;     ///< total clock routing
  int buffer_count = 0;
  double buffer_area_um2 = 0.0;
  double max_skew_ps = 0.0;       ///< max - min sink insertion delay
  double total_cap_ff = 0.0;      ///< switched clock capacitance (wire+pins)
};

/// Synthesizes the clock tree for `netlist` placed at `positions`. The clock
/// root is the clock input port if one exists, else the core center.
/// Designs without registers return a zeroed result.
ClockTreeResult synthesize_clock_tree(const netlist::Netlist& netlist,
                                      const std::vector<geom::Point>& positions,
                                      const CtsOptions& options);

}  // namespace ppacd::cts
