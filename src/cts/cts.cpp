#include "cts/cts.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/logging.hpp"

namespace ppacd::cts {

namespace {

using netlist::CellId;
using netlist::Netlist;

struct Sink {
  CellId cell = netlist::kInvalidId;
  geom::Point pos;
  double cap_ff = 0.0;
};

struct TreeStats {
  double wirelength_um = 0.0;
  int buffer_count = 0;
  double total_cap_ff = 0.0;
};

geom::Point centroid(const std::vector<Sink>& sinks, std::size_t lo,
                     std::size_t hi) {
  geom::Point c;
  for (std::size_t i = lo; i < hi; ++i) {
    c.x += sinks[i].pos.x;
    c.y += sinks[i].pos.y;
  }
  const double n = static_cast<double>(hi - lo);
  return geom::Point{c.x / n, c.y / n};
}

/// Builds the tree over sinks[lo, hi) rooted at a buffer at the group
/// centroid; returns {buffer position, buffer input cap}. `base_delay` is
/// the insertion delay accumulated from the root to this buffer's input.
/// Writes per-sink delays into `result`.
struct Level {
  geom::Point pos;
  double input_cap_ff = 0.0;
};

class TreeBuilder {
 public:
  TreeBuilder(const liberty::Library& lib, const liberty::LibCell& buffer,
              ClockTreeResult& result, TreeStats& stats, int max_sinks)
      : lib_(lib), buffer_(buffer), result_(result), stats_(stats),
        max_sinks_(max_sinks) {}

  Level build(std::vector<Sink>& sinks, std::size_t lo, std::size_t hi,
              double base_delay) {
    assert(hi > lo);
    const geom::Point here = centroid(sinks, lo, hi);
    ++stats_.buffer_count;
    stats_.total_cap_ff += buffer_.pins[0].cap_ff;

    if (hi - lo <= static_cast<std::size_t>(max_sinks_)) {
      // Leaf buffer drives the sinks directly (star wiring).
      double load = 0.0;
      for (std::size_t i = lo; i < hi; ++i) {
        const double len = geom::manhattan(here, sinks[i].pos);
        load += sinks[i].cap_ff + lib_.wire_cap_ff_per_um() * len;
        stats_.wirelength_um += len;
        stats_.total_cap_ff += sinks[i].cap_ff + lib_.wire_cap_ff_per_um() * len;
      }
      const double buf_delay = buffer_.intrinsic_ps + buffer_.drive_res_kohm * load;
      for (std::size_t i = lo; i < hi; ++i) {
        const double len = geom::manhattan(here, sinks[i].pos);
        const double wire_delay = lib_.wire_res_kohm_per_um() * len *
                                  (0.5 * lib_.wire_cap_ff_per_um() * len +
                                   sinks[i].cap_ff);
        result_.insertion_delay_ps[sinks[i].cell.index()] =
            base_delay + buf_delay + wire_delay;
      }
      return Level{here, buffer_.pins[0].cap_ff};
    }

    // Split along the longer axis at the median.
    geom::BBox box;
    for (std::size_t i = lo; i < hi; ++i) box.expand(sinks[i].pos);
    const bool split_x = box.rect().width() >= box.rect().height();
    const std::size_t mid = lo + (hi - lo) / 2;
    std::nth_element(sinks.begin() + static_cast<std::ptrdiff_t>(lo),
                     sinks.begin() + static_cast<std::ptrdiff_t>(mid),
                     sinks.begin() + static_cast<std::ptrdiff_t>(hi),
                     [split_x](const Sink& a, const Sink& b) {
                       return split_x ? a.pos.x < b.pos.x : a.pos.y < b.pos.y;
                     });

    // This buffer's delay depends on its downstream load, which depends on
    // the children's positions. Estimate child positions first (centroids),
    // compute this buffer's delay, then recurse with the updated base.
    const geom::Point left_pos = centroid(sinks, lo, mid);
    const geom::Point right_pos = centroid(sinks, mid, hi);
    const double len_l = geom::manhattan(here, left_pos);
    const double len_r = geom::manhattan(here, right_pos);
    const double load = 2.0 * buffer_.pins[0].cap_ff +
                        lib_.wire_cap_ff_per_um() * (len_l + len_r);
    const double buf_delay = buffer_.intrinsic_ps + buffer_.drive_res_kohm * load;
    stats_.wirelength_um += len_l + len_r;
    stats_.total_cap_ff += lib_.wire_cap_ff_per_um() * (len_l + len_r);

    auto wire_delay = [this](double len) {
      return lib_.wire_res_kohm_per_um() * len *
             (0.5 * lib_.wire_cap_ff_per_um() * len + buffer_.pins[0].cap_ff);
    };
    build(sinks, lo, mid, base_delay + buf_delay + wire_delay(len_l));
    build(sinks, mid, hi, base_delay + buf_delay + wire_delay(len_r));
    return Level{here, buffer_.pins[0].cap_ff};
  }

 private:
  const liberty::Library& lib_;
  const liberty::LibCell& buffer_;
  ClockTreeResult& result_;
  TreeStats& stats_;
  int max_sinks_;
};

}  // namespace

ClockTreeResult synthesize_clock_tree(const Netlist& nl,
                                      const std::vector<geom::Point>& positions,
                                      const CtsOptions& options) {
  ClockTreeResult result;
  result.insertion_delay_ps.assign(nl.cell_count(), 0.0);

  const liberty::Library& lib = nl.library();
  const auto buffer_id = lib.find(options.buffer_cell);
  assert(buffer_id.has_value());
  const liberty::LibCell& buffer = lib.cell(*buffer_id);

  std::vector<Sink> sinks;
  for (std::size_t ci = 0; ci < nl.cell_count(); ++ci) {
    const CellId cid = static_cast<CellId>(ci);
    const liberty::LibCell& lc = nl.lib_cell_of(cid);
    if (!liberty::is_sequential(lc.function)) continue;
    const int ck = lc.clock_pin_index();
    if (ck < 0) continue;
    Sink sink;
    sink.cell = cid;
    sink.pos = positions.at(ci);
    sink.cap_ff = lc.pins[static_cast<std::size_t>(ck)].cap_ff;
    sinks.push_back(sink);
  }
  if (sinks.empty()) return result;

  // Clock root: the port of the clock net if present, else the sink centroid.
  geom::Point root = centroid(sinks, 0, sinks.size());
  for (std::size_t po = 0; po < nl.port_count(); ++po) {
    const netlist::Port& port = nl.port(static_cast<netlist::PortId>(po));
    const netlist::NetId net = nl.pin(port.pin).net;
    if (net != netlist::kInvalidId && nl.net(net).is_clock) {
      root = port.position;
      break;
    }
  }

  TreeStats stats;
  TreeBuilder builder(lib, buffer, result, stats, options.max_sinks_per_buffer);
  const Level top = builder.build(sinks, 0, sinks.size(), 0.0);

  // Root wire from the clock source to the top buffer.
  const double root_len = geom::manhattan(root, top.pos);
  stats.wirelength_um += root_len;
  stats.total_cap_ff += lib.wire_cap_ff_per_um() * root_len;
  const double root_delay =
      lib.wire_res_kohm_per_um() * root_len *
      (0.5 * lib.wire_cap_ff_per_um() * root_len + top.input_cap_ff);
  for (double& delay : result.insertion_delay_ps) {
    if (delay > 0.0) delay += root_delay;
  }

  result.wirelength_um = stats.wirelength_um;
  result.buffer_count = stats.buffer_count;
  result.buffer_area_um2 = stats.buffer_count * buffer.area_um2();
  result.total_cap_ff = stats.total_cap_ff;

  double min_delay = std::numeric_limits<double>::infinity();
  double max_delay = 0.0;
  for (const Sink& sink : sinks) {
    const double d = result.insertion_delay_ps[sink.cell.index()];
    min_delay = std::min(min_delay, d);
    max_delay = std::max(max_delay, d);
  }
  result.max_skew_ps = max_delay - min_delay;
  PPACD_LOG_DEBUG("cts") << nl.name() << ": " << stats.buffer_count
                         << " buffers, WL " << stats.wirelength_um
                         << " um, skew " << result.max_skew_ps << " ps";
  return result;
}

}  // namespace ppacd::cts
