#include "netlist/stats.hpp"

#include <algorithm>
#include <sstream>

namespace ppacd::netlist {

namespace {
std::size_t depth_of(const Netlist& netlist, ModuleId id) {
  std::size_t depth = 0;
  for (ModuleId m = id; m != kInvalidId; m = netlist.module(m).parent) ++depth;
  return depth;
}
}  // namespace

NetlistStats compute_stats(const Netlist& netlist) {
  NetlistStats stats;
  stats.cell_count = netlist.cell_count();
  stats.net_count = netlist.net_count();
  stats.pin_count = netlist.pin_count();
  stats.port_count = netlist.port_count();
  stats.module_count = netlist.module_count();
  stats.total_cell_area_um2 = netlist.total_cell_area();

  for (std::size_t i = 0; i < netlist.cell_count(); ++i) {
    const auto& lc = netlist.lib_cell_of(static_cast<CellId>(i));
    if (liberty::is_sequential(lc.function)) ++stats.register_count;
  }
  for (std::size_t i = 0; i < netlist.module_count(); ++i) {
    stats.max_hierarchy_depth =
        std::max(stats.max_hierarchy_depth, depth_of(netlist, static_cast<ModuleId>(i)));
  }
  double degree_sum = 0.0;
  for (std::size_t i = 0; i < netlist.net_count(); ++i) {
    const auto degree = netlist.net(static_cast<NetId>(i)).degree();
    degree_sum += static_cast<double>(degree);
    stats.max_net_degree = std::max(stats.max_net_degree, degree);
  }
  if (stats.net_count > 0) {
    stats.average_net_degree = degree_sum / static_cast<double>(stats.net_count);
  }
  return stats;
}

std::string to_string(const NetlistStats& stats) {
  std::ostringstream out;
  out << "#insts=" << stats.cell_count << " #nets=" << stats.net_count
      << " #pins=" << stats.pin_count << " #ports=" << stats.port_count
      << " #regs=" << stats.register_count << " #modules=" << stats.module_count
      << " depth=" << stats.max_hierarchy_depth
      << " area=" << stats.total_cell_area_um2 << "um2";
  return out.str();
}

}  // namespace ppacd::netlist
