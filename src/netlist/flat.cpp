#include "netlist/flat.hpp"

namespace ppacd::netlist {

FlatConnectivity FlatConnectivity::build(const Netlist& nl) {
  FlatConnectivity flat;
  const std::size_t nets = nl.net_count();
  flat.net_cells.start_rows(nets);
  for (std::size_t ni = 0; ni < nets; ++ni) {
    const Net& net = nl.net(static_cast<NetId>(ni));
    std::size_t cells = 0;
    for (const PinId pid : net.pins) {
      if (nl.pin(pid).kind == PinKind::kCellPin) ++cells;
    }
    flat.net_cells.add_to_row(ni, cells);
  }
  flat.net_cells.commit_rows();
  for (std::size_t ni = 0; ni < nets; ++ni) {
    const Net& net = nl.net(static_cast<NetId>(ni));
    for (const PinId pid : net.pins) {
      const Pin& pin = nl.pin(pid);
      if (pin.kind == PinKind::kCellPin) flat.net_cells.push(ni, pin.cell);
    }
  }
  return flat;
}

}  // namespace ppacd::netlist
