/// \file io.hpp
/// \brief Netlist and placement interchange.
///
/// The paper's flow reads .v/.def; this module provides the equivalent
/// surface for this library:
///   * write_verilog / read_verilog: gate-level structural Verilog over the
///     library's cells. The subset covers what the writer emits -- one
///     module, `input/output/wire` declarations, and named-connection
///     instantiations. Hierarchy is encoded in escaped instance names
///     (\core0/alu/g42) and restored on read.
///   * write_placement_def / read_placement_def: a DEF-like COMPONENTS
///     section carrying placed cell locations (microns), for handing
///     placements between tools or sessions.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "fault/expected.hpp"
#include "geom/geometry.hpp"
#include "netlist/netlist.hpp"

namespace ppacd::netlist {

/// Writes gate-level structural Verilog. Every net becomes a wire named
/// after the netlist net; ports keep their names.
void write_verilog(const Netlist& netlist, std::ostream& out);

/// Parse errors carry a line number and message.
struct ParseError {
  int line = 0;
  std::string message;
};

/// Reads the structural-Verilog subset produced by write_verilog. Returns
/// nullopt and fills `error` (if non-null) on malformed input. Instance
/// names containing '/' re-create the module hierarchy.
std::optional<Netlist> read_verilog(std::istream& in,
                                    const liberty::Library& library,
                                    ParseError* error = nullptr);

/// Structured-error form of read_verilog, and the `io.read` fault site.
/// Parse failures map to `io-parse-failed` (line number in the message);
/// injected faults map to `io-read-failed` / `io-read-timeout` /
/// `non-finite-result` / `alloc-failure`.
[[nodiscard]] fault::Expected<Netlist, fault::FlowError> try_read_verilog(
    std::istream& in, const liberty::Library& library);

/// Opens `path` and parses it via try_read_verilog. A file that cannot be
/// opened maps to `io-open-failed`.
[[nodiscard]] fault::Expected<Netlist, fault::FlowError> try_load_verilog(
    const std::string& path, const liberty::Library& library);

/// Writes a DEF-like placement: DESIGN, DIEAREA, and one COMPONENTS entry
/// per cell with its center in microns.
void write_placement_def(const Netlist& netlist,
                         const std::vector<geom::Point>& positions,
                         const geom::Rect& die, std::ostream& out);

/// Reads a placement written by write_placement_def back into positions
/// (indexed by CellId, matched by cell name). Cells missing from the file
/// keep (0,0). Returns false on malformed input or unknown cells.
bool read_placement_def(std::istream& in, const Netlist& netlist,
                        std::vector<geom::Point>* positions,
                        ParseError* error = nullptr);

}  // namespace ppacd::netlist
