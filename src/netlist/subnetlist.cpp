#include "netlist/subnetlist.hpp"

#include <cassert>
#include <string>
#include <unordered_set>

namespace ppacd::netlist {

SubNetlist extract_subnetlist(const Netlist& parent,
                              const std::vector<CellId>& cells) {
  assert(!cells.empty());
  SubNetlist sub(parent.library());
  std::unordered_set<CellId> member(cells.begin(), cells.end());

  for (CellId cid : cells) {
    const Cell& cell = parent.cell(cid);
    const CellId new_id =
        sub.netlist.add_cell(cell.name, cell.lib_cell, sub.netlist.root_module());
    sub.cell_map.emplace(cid, new_id);
  }

  // Visit every net touching a member cell exactly once.
  std::unordered_set<NetId> visited;
  for (CellId cid : cells) {
    const Cell& cell = parent.cell(cid);
    for (PinId pid : cell.pins) {
      const Pin& pin = parent.pin(pid);
      if (pin.net == kInvalidId || !visited.insert(pin.net).second) continue;
      const Net& net = parent.net(pin.net);

      bool driver_inside = false;
      bool sink_inside = false;
      bool external_contact = false;
      for (PinId npid : net.pins) {
        const Pin& np = parent.pin(npid);
        const bool inside =
            np.kind == PinKind::kCellPin && member.count(np.cell) > 0;
        if (!inside) {
          external_contact = true;
          continue;
        }
        if (np.dir == liberty::PinDir::kOutput) driver_inside = true;
        else sink_inside = true;
      }
      if (!driver_inside && !sink_inside) continue;  // touches us not at all

      const NetId new_net = sub.netlist.add_net(net.name);
      sub.netlist.mutable_net(new_net).weight = net.weight;
      sub.netlist.mutable_net(new_net).is_clock = net.is_clock;

      for (PinId npid : net.pins) {
        const Pin& np = parent.pin(npid);
        if (np.kind != PinKind::kCellPin || member.count(np.cell) == 0) continue;
        const CellId sub_cell = sub.cell_map.at(np.cell);
        sub.netlist.connect(new_net, sub.netlist.cell_pin(sub_cell, np.lib_pin));
      }

      if (external_contact) {
        ++sub.boundary_net_count;
        if (!driver_inside) {
          // External driver feeds internal sinks: add an input port (drives).
          const PortId port = sub.netlist.add_port("pi_" + net.name,
                                                   liberty::PinDir::kInput);
          sub.netlist.connect(new_net, sub.netlist.port(port).pin);
        }
        if (driver_inside) {
          // Internal driver with external sinks: add an output port (sink).
          const PortId port = sub.netlist.add_port("po_" + net.name,
                                                   liberty::PinDir::kOutput);
          sub.netlist.connect(new_net, sub.netlist.port(port).pin);
        }
      }
    }
  }
  return sub;
}

}  // namespace ppacd::netlist
