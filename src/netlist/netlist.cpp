#include "netlist/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace ppacd::netlist {

Netlist::Netlist(const liberty::Library& lib, std::string name)
    : lib_(&lib), name_(std::move(name)) {
  Module root;
  root.id = ModuleId(0);
  root.name = name_;
  modules_.push_back(std::move(root));
}

ModuleId Netlist::add_module(std::string name, ModuleId parent) {
  assert(modules_.contains(parent));
  Module mod;
  mod.id = modules_.next_id();
  mod.name = std::move(name);
  mod.parent = parent;
  modules_.push_back(std::move(mod));
  modules_[parent].children.push_back(modules_.back().id);
  return modules_.back().id;
}

std::string Netlist::module_path(ModuleId id) const {
  std::vector<const std::string*> parts;
  for (ModuleId m = id; m != kInvalidId; m = module(m).parent) {
    parts.push_back(&module(m).name);
  }
  std::string path;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    if (!path.empty()) path.push_back('/');
    path += **it;
  }
  return path;
}

CellId Netlist::add_cell(std::string name, liberty::LibCellId lib_cell,
                         ModuleId module_id) {
  assert(modules_.contains(module_id));
  const liberty::LibCell& lc = lib_->cell(lib_cell);
  Cell cell;
  cell.id = cells_.next_id();
  cell.name = std::move(name);
  cell.lib_cell = lib_cell;
  cell.module = module_id;
  for (std::size_t i = 0; i < lc.pins.size(); ++i) {
    Pin pin;
    pin.id = pins_.next_id();
    pin.kind = PinKind::kCellPin;
    pin.cell = cell.id;
    pin.lib_pin = static_cast<int>(i);
    pin.dir = lc.pins[i].dir;
    pin.is_clock = lc.pins[i].is_clock;
    cell.pins.push_back(pin.id);
    pins_.push_back(pin);
  }
  modules_[module_id].cells.push_back(cell.id);
  cells_.push_back(std::move(cell));
  return cells_.back().id;
}

PortId Netlist::add_port(std::string name, liberty::PinDir dir) {
  Port port;
  port.id = ports_.next_id();
  port.name = std::move(name);
  port.dir = dir;

  Pin pin;
  pin.id = pins_.next_id();
  pin.kind = PinKind::kTopPort;
  pin.port = port.id;
  // Seen from inside the chip an input port drives, so flip the direction:
  // input port -> output pin (driver), output port -> input pin (sink).
  pin.dir = dir == liberty::PinDir::kInput ? liberty::PinDir::kOutput
                                           : liberty::PinDir::kInput;
  port.pin = pin.id;
  pins_.push_back(pin);
  ports_.push_back(std::move(port));
  return ports_.back().id;
}

NetId Netlist::add_net(std::string name) {
  Net net;
  net.id = nets_.next_id();
  net.name = std::move(name);
  nets_.push_back(std::move(net));
  return nets_.back().id;
}

void Netlist::connect(NetId net_id, PinId pin_id) {
  Net& net = nets_.at(net_id);
  Pin& pin = pins_.at(pin_id);
  assert(pin.net == kInvalidId && "pin already connected");
  pin.net = net_id;
  net.pins.push_back(pin_id);
  if (pin.dir == liberty::PinDir::kOutput) {
    assert(net.driver == kInvalidId && "net already driven");
    net.driver = pin_id;
  }
}

void Netlist::swap_lib_cell(CellId cell_id, liberty::LibCellId new_lib_cell) {
  Cell& cell = cells_.at(cell_id);
  const liberty::LibCell& old_lc = lib_->cell(cell.lib_cell);
  const liberty::LibCell& new_lc = lib_->cell(new_lib_cell);
  assert(old_lc.pins.size() == new_lc.pins.size() &&
         "swap_lib_cell requires an identical pin list");
  for (std::size_t i = 0; i < old_lc.pins.size(); ++i) {
    assert(old_lc.pins[i].name == new_lc.pins[i].name);
    assert(old_lc.pins[i].dir == new_lc.pins[i].dir);
  }
  (void)old_lc;
  (void)new_lc;
  cell.lib_cell = new_lib_cell;
}

void Netlist::disconnect(PinId pin_id) {
  Pin& pin = pins_.at(pin_id);
  assert(pin.net != kInvalidId && "pin is not connected");
  Net& net = nets_.at(pin.net);
  assert(net.driver != pin_id && "cannot detach a net's driver");
  auto& pins = net.pins;
  pins.erase(std::remove(pins.begin(), pins.end(), pin_id), pins.end());
  pin.net = kInvalidId;
}

PinId Netlist::cell_pin(CellId cell_id, int lib_pin) const {
  const Cell& c = cell(cell_id);
  assert(lib_pin >= 0 && static_cast<std::size_t>(lib_pin) < c.pins.size());
  return c.pins[static_cast<std::size_t>(lib_pin)];
}

PinId Netlist::cell_output_pin(CellId cell_id) const {
  const int idx = lib_cell_of(cell_id).output_pin_index();
  if (idx < 0) return kInvalidId;
  return cell_pin(cell_id, idx);
}

const liberty::LibCell& Netlist::lib_cell_of(CellId cell_id) const {
  return lib_->cell(cell(cell_id).lib_cell);
}

double Netlist::total_cell_area() const {
  double area = 0.0;
  for (const Cell& c : cells_) area += lib_->cell(c.lib_cell).area_um2();
  return area;
}

bool Netlist::is_io_net(NetId net_id) const {
  for (PinId pid : net(net_id).pins) {
    if (pin(pid).kind == PinKind::kTopPort) return true;
  }
  return false;
}

std::vector<std::string> Netlist::validate() const {
  std::vector<std::string> problems;
  auto complain = [&problems](const std::string& msg) { problems.push_back(msg); };

  for (const Net& net : nets_) {
    int drivers = 0;
    for (PinId pid : net.pins) {
      const Pin& p = pin(pid);
      if (p.net != net.id) {
        complain("net " + net.name + ": pin back-reference mismatch");
      }
      if (p.dir == liberty::PinDir::kOutput) ++drivers;
    }
    if (drivers != 1) {
      std::ostringstream msg;
      msg << "net " << net.name << ": " << drivers << " drivers (expected 1)";
      complain(msg.str());
    }
    if (net.driver == kInvalidId) {
      complain("net " + net.name + ": no recorded driver");
    }
  }

  for (const Cell& cell : cells_) {
    const liberty::LibCell& lc = lib_->cell(cell.lib_cell);
    if (cell.pins.size() != lc.pins.size()) {
      complain("cell " + cell.name + ": pin count mismatch with library");
      continue;
    }
    for (std::size_t i = 0; i < cell.pins.size(); ++i) {
      const Pin& p = pin(cell.pins[i]);
      if (p.cell != cell.id || p.lib_pin != static_cast<int>(i)) {
        complain("cell " + cell.name + ": pin cross-link broken");
      }
    }
  }

  for (const Pin& p : pins_) {
    if (p.net == kInvalidId) {
      // Dangling pins are tolerated for outputs (unused Q) but flagged for
      // inputs: a floating input makes STA and activity propagation undefined.
      if (p.dir == liberty::PinDir::kInput) {
        const std::string owner = p.kind == PinKind::kCellPin
                                      ? cell(p.cell).name
                                      : port(p.port).name;
        complain("floating input pin on " + owner);
      }
    }
  }
  return problems;
}

}  // namespace ppacd::netlist
