/// \file flat.hpp
/// \brief Flat CSR view of netlist connectivity for the clustering kernels.
///
/// The object-model path (`net.pins` -> `nl.pin(id)` -> `pin.cell`) chases a
/// bounds-checked pointer per pin; the clustering engines walk every net many
/// times, so they pay it on every visit. `FlatConnectivity` materializes the
/// net -> member-cell relation once into a `util::Csr`, preserving pin order
/// per net so conversions stay bit-identical with the object-model loop.
#pragma once

#include <cstdint>

#include "netlist/netlist.hpp"
#include "util/csr.hpp"

namespace ppacd::netlist {

struct FlatConnectivity {
  /// Row per net: member cell ids in pin order (cell pins only; top ports
  /// are dropped). Cells are NOT deduplicated — multi-pin membership shows
  /// up as repeats, exactly like the pin loop it replaces.
  util::Csr<CellId> net_cells;

  static FlatConnectivity build(const Netlist& nl);
};

}  // namespace ppacd::netlist
