/// \file subnetlist.hpp
/// \brief Cluster-induced sub-netlist extraction (Figure 3, first step).
///
/// For a given cluster, the V-P&R framework needs a standalone netlist over
/// the cluster's instances. Each inter-cluster net incident to the cluster is
/// terminated at a new top-level port: an *input* port when the external
/// driver feeds sinks inside the cluster, an *output* port when the cluster
/// drives external sinks.
#pragma once

#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"

namespace ppacd::netlist {

/// Result of sub-netlist extraction.
struct SubNetlist {
  Netlist netlist;                               ///< the induced design
  std::unordered_map<CellId, CellId> cell_map;   ///< original -> sub cell id
  std::size_t boundary_net_count = 0;            ///< nets cut by the cluster

  explicit SubNetlist(const liberty::Library& lib) : netlist(lib, "cluster") {}
};

/// Extracts the sub-netlist induced by `cells` (must be non-empty, unique).
/// Nets entirely outside the cluster are dropped; nets entirely inside are
/// copied; boundary nets gain a port. Hierarchy is flattened to the root.
SubNetlist extract_subnetlist(const Netlist& parent,
                              const std::vector<CellId>& cells);

}  // namespace ppacd::netlist
