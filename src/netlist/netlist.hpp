/// \file netlist.hpp
/// \brief Hypergraph netlist with logical hierarchy (OpenDB substitute).
///
/// The netlist is the common currency of the whole system: STA walks its
/// timing arcs, the placer treats cells as movable objects and top-level
/// ports as fixed terminals, the clustering algorithms view it as a
/// hypergraph (vertices = cells, hyperedges = nets), and Algorithm 2 consumes
/// the module tree as the logical hierarchy T(V', E').
///
/// Ownership: a Netlist references (does not own) the liberty::Library that
/// its cells are instantiated from; the library must outlive the netlist.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/geometry.hpp"
#include "liberty/library.hpp"
#include "util/strong_id.hpp"

namespace ppacd::netlist {

// Each id domain is a distinct StrongId instantiation: cross-domain
// assignment, comparison, and container subscripting are compile errors.
using CellId = util::StrongId<struct CellIdTag>;
using NetId = util::StrongId<struct NetIdTag>;
using PinId = util::StrongId<struct PinIdTag>;
using PortId = util::StrongId<struct PortIdTag>;
using ModuleId = util::StrongId<struct ModuleIdTag>;

/// Universal invalid sentinel (assignable to / comparable with every id
/// domain above); default-constructed ids are equal to it.
inline constexpr util::InvalidId kInvalidId{};

/// Kind of connection point: a pin of a cell, or a top-level chip port.
enum class PinKind { kCellPin, kTopPort };

/// One connection point. For cell pins, `lib_pin` indexes into the library
/// cell's pin list; for top ports, `port` identifies the Port record.
struct Pin {
  PinId id = kInvalidId;
  PinKind kind = PinKind::kCellPin;
  CellId cell = kInvalidId;
  int lib_pin = -1;
  PortId port = kInvalidId;
  NetId net = kInvalidId;
  liberty::PinDir dir = liberty::PinDir::kInput;
  bool is_clock = false;
};

/// One placed instance of a library cell inside a hierarchy module.
struct Cell {
  CellId id = kInvalidId;
  std::string name;
  liberty::LibCellId lib_cell = liberty::kInvalidLibCell;
  ModuleId module = kInvalidId;
  std::vector<PinId> pins;  ///< parallel to the library cell's pin list
};

/// A top-level chip port. Its physical location on the die boundary is fixed
/// by the floorplanner before placement.
struct Port {
  PortId id = kInvalidId;
  std::string name;
  liberty::PinDir dir = liberty::PinDir::kInput;  ///< direction seen from outside
  PinId pin = kInvalidId;
  geom::Point position;  ///< on the core boundary; set by place::Floorplan
};

/// A hyperedge connecting one driver pin and zero or more sink pins.
struct Net {
  NetId id = kInvalidId;
  std::string name;
  double weight = 1.0;        ///< placement net weight (Alg. 1 line 22 scales IO nets)
  bool is_clock = false;      ///< part of the clock network
  PinId driver = kInvalidId;  ///< output cell pin or input top port
  std::vector<PinId> pins;    ///< all pins including the driver

  std::size_t degree() const { return pins.size(); }
};

/// One node of the logical hierarchy tree. The root is created implicitly.
struct Module {
  ModuleId id = kInvalidId;
  std::string name;        ///< local name, e.g. "alu"
  ModuleId parent = kInvalidId;
  std::vector<ModuleId> children;
  std::vector<CellId> cells;  ///< cells instantiated directly in this module
};

/// The netlist. Construction is incremental through the add_*/connect API;
/// `validate()` checks structural invariants once building is done.
class Netlist {
 public:
  explicit Netlist(const liberty::Library& lib, std::string name = "top");

  const liberty::Library& library() const { return *lib_; }
  const std::string& name() const { return name_; }

  // --- Hierarchy -----------------------------------------------------------
  ModuleId root_module() const { return ModuleId(0); }
  ModuleId add_module(std::string name, ModuleId parent);
  const Module& module(ModuleId id) const { return modules_.at(id); }
  std::size_t module_count() const { return modules_.size(); }
  /// Full hierarchical path, e.g. "top/core0/alu".
  std::string module_path(ModuleId id) const;
  /// True if the design has hierarchy below the root.
  bool has_hierarchy() const { return modules_.size() > 1; }

  // --- Construction --------------------------------------------------------
  CellId add_cell(std::string name, liberty::LibCellId lib_cell, ModuleId module);
  PortId add_port(std::string name, liberty::PinDir dir);
  NetId add_net(std::string name);
  /// Attaches `pin` to `net`; records the driver if the pin drives.
  void connect(NetId net, PinId pin);

  // --- Access ---------------------------------------------------------------
  const Cell& cell(CellId id) const { return cells_.at(id); }
  const Net& net(NetId id) const { return nets_.at(id); }
  Net& mutable_net(NetId id) { return nets_.at(id); }
  const Pin& pin(PinId id) const { return pins_.at(id); }
  const Port& port(PortId id) const { return ports_.at(id); }
  Port& mutable_port(PortId id) { return ports_.at(id); }

  std::size_t cell_count() const { return cells_.size(); }
  std::size_t net_count() const { return nets_.size(); }
  std::size_t pin_count() const { return pins_.size(); }
  std::size_t port_count() const { return ports_.size(); }

  /// Dense id ranges [0, count) for counting loops:
  ///   for (CellId c : nl.cell_ids()) ...
  util::IdRange<CellId> cell_ids() const { return cells_.ids(); }
  util::IdRange<NetId> net_ids() const { return nets_.ids(); }
  util::IdRange<PinId> pin_ids() const { return pins_.ids(); }
  util::IdRange<PortId> port_ids() const { return ports_.ids(); }
  util::IdRange<ModuleId> module_ids() const { return modules_.ids(); }

  /// Pin of `cell` at library pin index `lib_pin`.
  PinId cell_pin(CellId cell, int lib_pin) const;
  /// Output pin of `cell`; kInvalidId if the cell has no output.
  PinId cell_output_pin(CellId cell) const;
  /// The library cell of `cell`.
  const liberty::LibCell& lib_cell_of(CellId cell) const;

  /// Total placeable cell area in um^2.
  double total_cell_area() const;

  /// True if `net` connects to any top-level port (an "IO net", Alg. 1 l.22).
  bool is_io_net(NetId net) const;

  /// Marks nets reachable from clock source ports/pins as clock nets.
  void mark_clock_net(NetId net) { mutable_net(net).is_clock = true; }

  /// Re-binds `cell` to a different library cell with an identical pin list
  /// (same names, directions and order) -- the gate-sizing primitive.
  /// Asserts on incompatible footprints.
  void swap_lib_cell(CellId cell, liberty::LibCellId new_lib_cell);

  /// Detaches `pin` from its net (the net keeps its other pins). Used by
  /// net rewiring (e.g. buffer insertion). Asserts if the pin drives the
  /// net -- drivers cannot be detached without deleting the net.
  void disconnect(PinId pin);

  /// Checks structural invariants (every net driven exactly once, every pin
  /// on a net, pin/cell cross-links consistent). Returns human-readable
  /// problems; empty means valid.
  std::vector<std::string> validate() const;

 private:
  const liberty::Library* lib_;
  std::string name_;
  util::IdVector<ModuleId, Module> modules_;
  util::IdVector<CellId, Cell> cells_;
  util::IdVector<NetId, Net> nets_;
  util::IdVector<PinId, Pin> pins_;
  util::IdVector<PortId, Port> ports_;
};

}  // namespace ppacd::netlist
