/// \file stats.hpp
/// \brief Netlist statistics (Table 1 columns and clustering diagnostics).
#pragma once

#include <cstddef>
#include <string>

#include "netlist/netlist.hpp"

namespace ppacd::netlist {

/// Aggregate statistics of a netlist.
struct NetlistStats {
  std::size_t cell_count = 0;
  std::size_t net_count = 0;
  std::size_t pin_count = 0;
  std::size_t port_count = 0;
  std::size_t register_count = 0;   ///< sequential cells
  std::size_t module_count = 0;     ///< logical hierarchy nodes
  std::size_t max_hierarchy_depth = 0;
  double total_cell_area_um2 = 0.0;
  double average_net_degree = 0.0;
  std::size_t max_net_degree = 0;
};

/// Computes statistics over `netlist`.
NetlistStats compute_stats(const Netlist& netlist);

/// One-line human-readable rendering.
std::string to_string(const NetlistStats& stats);

}  // namespace ppacd::netlist
